// Ledger truncation tests (paper §5.2): verify -> dummy-update -> truncate
// -> audit, then continued verifiability with recent digests.

#include <gtest/gtest.h>

#include "ledger/truncation.h"
#include "ledger/verifier.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class TruncationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenTestDb(/*block_size=*/4);
    ASSERT_TRUE(db_->CreateTable("accounts", AccountSchema(),
                                 TableKind::kUpdateable)
                    .ok());
    // Enough traffic to span several blocks, including updates so history
    // exists.
    for (int i = 0; i < 10; i++) {
      auto txn = db_->Begin("app");
      ASSERT_TRUE(db_->Insert(*txn, "accounts",
                              {VS("acct" + std::to_string(i)), VB(i)})
                      .ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
    for (int i = 0; i < 4; i++) {
      auto txn = db_->Begin("app");
      ASSERT_TRUE(db_->Update(*txn, "accounts",
                              {VS("acct" + std::to_string(i)), VB(i + 100)})
                      .ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
    auto digest = db_->GenerateDigest();
    ASSERT_TRUE(digest.ok());
    digest_ = *digest;
  }

  std::unique_ptr<LedgerDatabase> db_;
  DatabaseDigest digest_;
};

TEST_F(TruncationTest, TruncateRemovesOldBlocksAndKeepsVerifying) {
  uint64_t cutoff = 2;
  ASSERT_GE(db_->database_ledger()->closed_block_count(), 3u);
  ASSERT_TRUE(db_->database_ledger()->FindBlock(0).ok());

  Status st = TruncateLedger(db_.get(), cutoff, {digest_});
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Old blocks physically gone.
  EXPECT_TRUE(db_->database_ledger()->FindBlock(0).status().IsNotFound());
  EXPECT_TRUE(db_->database_ledger()->FindBlock(1).status().IsNotFound());

  // The truncation is audited.
  auto records = db_->GetTruncationRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].truncated_below_block, cutoff);
  EXPECT_GE(records[0].max_txn_id, records[0].min_txn_id);

  // A fresh digest verifies post-truncation.
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(TruncationTest, LiveDataStillReadableAndCorrect) {
  ASSERT_TRUE(TruncateLedger(db_.get(), 2, {digest_}).ok());
  auto txn = db_->Begin("app");
  for (int i = 0; i < 10; i++) {
    auto row = db_->Get(*txn, "accounts", {VS("acct" + std::to_string(i))});
    ASSERT_TRUE(row.ok()) << "acct" << i;
    EXPECT_EQ((*row)[1].AsInt64(), i < 4 ? i + 100 : i);
  }
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(TruncationTest, OldDigestsStopVerifyingAfterTruncation) {
  ASSERT_TRUE(TruncateLedger(db_.get(), 2, {digest_}).ok());
  // digest_ covers a truncated block only if its block < 2; ours covers the
  // last closed block, so craft an old digest instead: a digest for block 0
  // can no longer verify.
  DatabaseDigest old = digest_;
  old.block_id = 0;
  auto report = VerifyLedger(db_.get(), {old});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST_F(TruncationTest, RefusesWithoutDigests) {
  EXPECT_EQ(TruncateLedger(db_.get(), 2, {}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TruncationTest, RefusesBeyondOpenBlock) {
  EXPECT_EQ(TruncateLedger(db_.get(), 10000, {digest_}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TruncationTest, RefusesOnTamperedDatabase) {
  TableStore* store = db_->GetStoreForTesting("accounts");
  Row* row = store->mutable_clustered()->MutableGet({VS("acct5")});
  ASSERT_NE(row, nullptr);
  (*row)[1] = VB(666);
  EXPECT_TRUE(
      TruncateLedger(db_.get(), 2, {digest_}).IsIntegrityViolation());
}

TEST_F(TruncationTest, TamperDetectionStillWorksAfterTruncation) {
  ASSERT_TRUE(TruncateLedger(db_.get(), 2, {digest_}).ok());
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());

  TableStore* store = db_->GetStoreForTesting("accounts");
  Row* row = store->mutable_clustered()->MutableGet({VS("acct7")});
  ASSERT_NE(row, nullptr);
  (*row)[1] = VB(31337);

  auto report = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST_F(TruncationTest, SecondTruncationWorks) {
  ASSERT_TRUE(TruncateLedger(db_.get(), 2, {digest_}).ok());
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  // More traffic, then truncate again past the first cutoff.
  for (int i = 10; i < 14; i++) {
    auto txn = db_->Begin("app");
    ASSERT_TRUE(db_->Insert(*txn, "accounts",
                            {VS("acct" + std::to_string(i)), VB(i)})
                    .ok());
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }
  auto digest2 = db_->GenerateDigest();
  ASSERT_TRUE(digest2.ok());
  uint64_t cutoff2 = digest2->block_id;  // truncate everything but the tail
  Status st = TruncateLedger(db_.get(), cutoff2, {*digest2});
  ASSERT_TRUE(st.ok()) << st.ToString();

  ASSERT_EQ(db_->GetTruncationRecords().size(), 2u);
  auto digest3 = db_->GenerateDigest();
  ASSERT_TRUE(digest3.ok());
  auto report = VerifyLedger(db_.get(), {*digest3});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(TruncationTest, NothingToTruncateIsOk) {
  // Cutoff 0 truncates nothing.
  EXPECT_TRUE(TruncateLedger(db_.get(), 0, {digest_}).ok());
  EXPECT_TRUE(db_->GetTruncationRecords().empty());
}

TEST_F(TruncationTest, VerifyHandlesLedgerTruncatedToTheTail) {
  // Truncate everything below the last closed block: the surviving chain
  // is as empty as truncation can make it, and full verification of that
  // stub — with a digest that still has a block to anchor to — must pass,
  // not crash or report phantom violations.
  uint64_t cutoff = digest_.block_id;
  ASSERT_TRUE(TruncateLedger(db_.get(), cutoff, {digest_}).ok());
  for (uint64_t b = 0; b < cutoff; b++)
    EXPECT_TRUE(db_->database_ledger()->FindBlock(b).status().IsNotFound())
        << "block " << b;

  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_GT(report->blocks_checked, 0u);

  // With no digests at all the truncated stub still self-verifies.
  auto bare = VerifyLedger(db_.get(), {});
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->ok()) << bare->Summary();
  EXPECT_FALSE(bare->has_digest_coverage);
}

// ---- Interaction with the incremental-verification watermark ----

class TruncationWatermarkTest : public TempDirTest {
 protected:
  // A durable database (the watermark file needs a data_dir) with traffic
  // spanning several blocks and a seeded watermark.
  void SetUp() override {
    TempDirTest::SetUp();
    LedgerDatabaseOptions options;
    options.data_dir = Path("db");
    options.database_id = "truncdb";
    options.block_size = 4;
    options.clock = [this] { return ++clock_; };
    auto db = LedgerDatabase::Open(std::move(options));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    Status created = db_->CreateTable("accounts", AccountSchema(),
                                      TableKind::kUpdateable);
    ASSERT_TRUE(created.ok()) << created.ToString();
    for (int i = 0; i < 12; i++) {
      auto txn = db_->Begin("app");
      ASSERT_TRUE(db_->Insert(*txn, "accounts",
                              {VS("acct" + std::to_string(i)), VB(i)})
                      .ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
    auto digest = db_->GenerateDigest();
    ASSERT_TRUE(digest.ok());
    digest_ = *digest;
    auto inc = VerifyLedgerIncremental(db_.get(), {digest_});
    ASSERT_TRUE(inc.ok());
    ASSERT_TRUE(inc->ok()) << inc->Summary();
    ASSERT_TRUE(db_->GetVerificationState().has_value());
  }

  std::unique_ptr<LedgerDatabase> db_;
  DatabaseDigest digest_;
  int64_t clock_ = 1000000;
};

TEST_F(TruncationWatermarkTest, TruncationClearsTheWatermark) {
  // TruncateLedger changes which transaction references are exempt, so
  // the pre-truncation watermark no longer attests what it claims: the
  // cached state and its file must both be gone afterwards.
  ASSERT_TRUE(TruncateLedger(db_.get(), 2, {digest_}).ok());
  EXPECT_FALSE(db_->GetVerificationState().has_value());
  EXPECT_FALSE(std::filesystem::exists(Path("db") + "/verify_state.sldb"));

  // And the next incremental verification re-seeds from scratch, agreeing
  // with a full run on the post-truncation chain.
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto inc = VerifyLedgerIncremental(db_.get(), {*digest});
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(inc->ok()) << inc->Summary();
  EXPECT_FALSE(inc->fell_back_to_full) << inc->fallback_reason;
  EXPECT_EQ(inc->watermark_block, 0u);
  auto state = db_->GetVerificationState();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->last_verified_block, digest->block_id);
}

TEST_F(TruncationWatermarkTest, StaleBelowCutoffWatermarkFallsBackCleanly) {
  // Force the pathological order: a watermark that references a block the
  // truncation then removes (as if the clear had been lost). Re-anchoring
  // must fail, fall back to a clean full verification and re-seed.
  VerificationState stale = *db_->GetVerificationState();
  ASSERT_TRUE(TruncateLedger(db_.get(), digest_.block_id, {digest_}).ok());
  stale.last_verified_block = 0;  // truncated away
  ASSERT_TRUE(db_->StoreVerificationState(stale).ok());

  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto full = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(full.ok());
  auto inc = VerifyLedgerIncremental(db_.get(), {*digest});
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(inc->fell_back_to_full);
  EXPECT_EQ(full->ok(), inc->ok());
  EXPECT_TRUE(inc->ok()) << inc->Summary();
  ASSERT_EQ(full->violations.size(), inc->violations.size());
}

}  // namespace
}  // namespace sqlledger
