// Geo-replication digest gating tests (paper §3.6).

#include <gtest/gtest.h>

#include "ledger/geo_replication.h"
#include "ledger/verifier.h"
#include "test_util.h"

namespace sqlledger {
namespace {

class GeoReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenTestDb(/*block_size=*/100);
    ASSERT_TRUE(
        db_->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable)
            .ok());
  }

  /// Commits one insert and returns its commit timestamp (the clock value
  /// assigned at commit, read back from the ledger entry).
  int64_t CommitOne(int64_t id) {
    uint64_t txn_id = 0;
    Status st = InsertOne(db_.get(), "t", id, "x", &txn_id);
    EXPECT_TRUE(st.ok());
    auto entry = db_->database_ledger()->FindEntry(txn_id);
    EXPECT_TRUE(entry.ok());
    return entry->commit_ts_micros;
  }

  std::unique_ptr<LedgerDatabase> db_;
  SimulatedGeoReplica replica_;
};

TEST_F(GeoReplicationTest, CaughtUpReplicaAllowsDigest) {
  int64_t ts = CommitOne(1);
  replica_.AdvanceTo(ts);
  GeoDigestOptions options;
  auto gated = GenerateGeoGatedDigest(db_.get(), replica_, options);
  ASSERT_TRUE(gated.ok()) << gated.status().ToString();
  EXPECT_FALSE(gated->alert);
  EXPECT_EQ(gated->lag_micros, 0);
}

TEST_F(GeoReplicationTest, LaggingReplicaDefersDigest) {
  CommitOne(1);
  // Replica never advanced: lag = full commit timestamp >> threshold.
  GeoDigestOptions options;
  options.max_lag_micros = 10;
  auto gated = GenerateGeoGatedDigest(db_.get(), replica_, options);
  EXPECT_EQ(gated.status().code(), StatusCode::kBusy);

  // Once the replica catches up, the digest is issued.
  replica_.AdvanceTo(CommitOne(2));
  gated = GenerateGeoGatedDigest(db_.get(), replica_, options);
  ASSERT_TRUE(gated.ok()) << gated.status().ToString();
}

TEST_F(GeoReplicationTest, ModerateLagIssuesDigestWithAlert) {
  int64_t ts = CommitOne(1);
  replica_.AdvanceTo(ts - 700);  // 700us behind
  GeoDigestOptions options;
  options.max_lag_micros = 1000;
  options.alert_lag_micros = 500;
  auto gated = GenerateGeoGatedDigest(db_.get(), replica_, options);
  ASSERT_TRUE(gated.ok()) << gated.status().ToString();
  EXPECT_TRUE(gated->alert);
  EXPECT_GE(gated->lag_micros, 700);
}

TEST_F(GeoReplicationTest, PristineDatabaseNeedsNoReplication) {
  GeoDigestOptions options;
  options.max_lag_micros = 1;
  auto gated = GenerateGeoGatedDigest(db_.get(), replica_, options);
  // Nothing pending: nothing can be lost in a failover. (The system
  // metadata transactions are in closed blocks or pending; advance the
  // replica to cover the bootstrap if the gate trips.)
  if (!gated.ok()) {
    replica_.AdvanceTo(db_->NowMicros());
    gated = GenerateGeoGatedDigest(db_.get(), replica_, options);
    ASSERT_TRUE(gated.ok()) << gated.status().ToString();
  }
}

TEST_F(GeoReplicationTest, GatedDigestVerifies) {
  CommitOne(1);
  replica_.AdvanceTo(db_->NowMicros());
  auto gated = GenerateGeoGatedDigest(db_.get(), replica_, GeoDigestOptions{});
  ASSERT_TRUE(gated.ok());
  auto report = VerifyLedger(db_.get(), {gated->digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(GeoReplicationTest, ReplicaHighWaterMarkIsMonotonic) {
  replica_.AdvanceTo(100);
  replica_.AdvanceTo(50);  // going backwards is ignored
  EXPECT_EQ(replica_.replicated_through(), 100);
  replica_.AdvanceTo(200);
  EXPECT_EQ(replica_.replicated_through(), 200);
}

}  // namespace
}  // namespace sqlledger
