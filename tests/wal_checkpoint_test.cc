// WAL framing/replay (including torn and corrupt tails) and checkpoint
// round-trips.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "util/coding.h"

namespace sqlledger {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sl_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

using WalTest = TempDir;
using CheckpointTest = TempDir;

WalCommitRecord MakeRecord(uint64_t txn_id) {
  WalCommitRecord rec;
  rec.txn_id = txn_id;
  rec.commit_ts_micros = 1000 + static_cast<int64_t>(txn_id);
  rec.user_name = "user" + std::to_string(txn_id);
  rec.block_id = txn_id / 10;
  rec.block_ordinal = txn_id % 10;
  Hash256 root;
  root.bytes[0] = static_cast<uint8_t>(txn_id);
  rec.table_roots.emplace_back(100, root);
  WalOp op;
  op.type = WalOpType::kInsert;
  op.table_id = 100;
  op.key = {Value::BigInt(static_cast<int64_t>(txn_id))};
  op.new_row = {Value::BigInt(static_cast<int64_t>(txn_id)),
                Value::Varchar("payload")};
  rec.ops.push_back(op);
  return rec;
}

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  WalCommitRecord rec = MakeRecord(7);
  rec.ops.push_back(WalOp{WalOpType::kDelete, 101,
                          {Value::BigInt(9)},
                          {}});
  rec.ops.push_back(WalOp{WalOpType::kUpdate, 102,
                          {Value::BigInt(1)},
                          {Value::BigInt(1), Value::Varchar("new")}});
  std::vector<uint8_t> buf;
  rec.EncodeTo(&buf);
  auto decoded = WalCommitRecord::Decode(Slice(buf));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->txn_id, 7u);
  EXPECT_EQ(decoded->user_name, "user7");
  EXPECT_EQ(decoded->block_ordinal, 7u);
  ASSERT_EQ(decoded->table_roots.size(), 1u);
  EXPECT_EQ(decoded->table_roots[0].first, 100u);
  ASSERT_EQ(decoded->ops.size(), 3u);
  EXPECT_EQ(decoded->ops[1].type, WalOpType::kDelete);
  EXPECT_EQ(decoded->ops[2].new_row[1].string_value(), "new");
}

TEST(WalRecordTest, DecodeRejectsTruncation) {
  WalCommitRecord rec = MakeRecord(7);
  std::vector<uint8_t> buf;
  rec.EncodeTo(&buf);
  for (size_t cut : {size_t{1}, size_t{8}, buf.size() / 2, buf.size() - 1}) {
    auto decoded = WalCommitRecord::Decode(Slice(buf.data(), cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST_F(WalTest, AppendAndReplay) {
  auto wal = Wal::Open(Path("wal.log"), WalOptions{});
  ASSERT_TRUE(wal.ok());
  for (uint64_t i = 0; i < 20; i++) {
    ASSERT_TRUE((*wal)->AppendCommit(MakeRecord(i)).ok());
  }
  (*wal).reset();

  uint64_t seen = 0;
  auto count = Wal::Replay(Path("wal.log"), [&](Slice payload) {
    auto rec = WalCommitRecord::Decode(payload);
    EXPECT_TRUE(rec.ok());
    EXPECT_EQ(rec->txn_id, seen);
    seen++;
    return Status::OK();
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 20u);
}

TEST_F(WalTest, ReplayOfMissingFileIsEmpty) {
  auto count = Wal::Replay(Path("nonexistent.log"),
                           [](Slice) { return Status::OK(); });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST_F(WalTest, TornTailIsTolerated) {
  {
    auto wal = Wal::Open(Path("wal.log"), WalOptions{});
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 0; i < 5; i++)
      ASSERT_TRUE((*wal)->AppendCommit(MakeRecord(i)).ok());
  }
  // Chop bytes off the end, simulating a crash mid-write.
  auto size = std::filesystem::file_size(Path("wal.log"));
  std::filesystem::resize_file(Path("wal.log"), size - 3);

  uint64_t seen = 0;
  auto count = Wal::Replay(Path("wal.log"), [&](Slice) {
    seen++;
    return Status::OK();
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 4u);  // last record torn away
}

TEST_F(WalTest, TornTailToleratedAtEveryByteOffset) {
  // Write a multi-record log, then simulate a crash tearing the FINAL
  // record at every possible byte boundary — mid-header, mid-length,
  // mid-CRC, every prefix of the payload. Replay must always return
  // exactly the four intact records, never an error, never a fifth.
  {
    auto wal = Wal::Open(Path("wal.log"), WalOptions{});
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 0; i < 5; i++)
      ASSERT_TRUE((*wal)->AppendCommit(MakeRecord(i)).ok());
  }
  std::vector<uint8_t> last_payload;
  MakeRecord(4).EncodeTo(&last_payload);
  const size_t last_frame = 8 + last_payload.size();
  const size_t full_size = std::filesystem::file_size(Path("wal.log"));
  ASSERT_GT(full_size, last_frame);
  const size_t last_start = full_size - last_frame;

  for (size_t cut = last_start; cut <= full_size; cut++) {
    std::filesystem::copy_file(
        Path("wal.log"), Path("torn.log"),
        std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(Path("torn.log"), cut);
    uint64_t seen = 0;
    auto count = Wal::Replay(Path("torn.log"), [&](Slice) {
      seen++;
      return Status::OK();
    });
    ASSERT_TRUE(count.ok()) << "cut at byte " << cut << ": "
                            << count.status().ToString();
    EXPECT_EQ(*count, cut == full_size ? 5u : 4u) << "cut at byte " << cut;
  }
}

TEST_F(WalTest, CorruptRecordStopsReplay) {
  {
    auto wal = Wal::Open(Path("wal.log"), WalOptions{});
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 0; i < 5; i++)
      ASSERT_TRUE((*wal)->AppendCommit(MakeRecord(i)).ok());
  }
  // Flip a byte in the middle of the file (inside record payloads).
  std::fstream f(Path("wal.log"),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(40);
  char byte;
  f.seekg(40);
  f.get(byte);
  f.seekp(40);
  f.put(static_cast<char>(byte ^ 0xFF));
  f.close();

  uint64_t seen = 0;
  auto count = Wal::Replay(Path("wal.log"), [&](Slice) {
    seen++;
    return Status::OK();
  });
  ASSERT_TRUE(count.ok());
  EXPECT_LT(*count, 5u);  // replay stopped at the corrupt record
}

TEST_F(WalTest, ResetTruncates) {
  auto wal = Wal::Open(Path("wal.log"), WalOptions{});
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->AppendCommit(MakeRecord(1)).ok());
  ASSERT_TRUE((*wal)->Reset().ok());
  ASSERT_TRUE((*wal)->AppendCommit(MakeRecord(2)).ok());
  (*wal).reset();

  std::vector<uint64_t> ids;
  ASSERT_TRUE(Wal::Replay(Path("wal.log"), [&](Slice payload) {
                auto rec = WalCommitRecord::Decode(payload);
                ids.push_back(rec->txn_id);
                return Status::OK();
              }).ok());
  EXPECT_EQ(ids, (std::vector<uint64_t>{2}));
}

Schema TwoColSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, true);
  s.SetPrimaryKey({0});
  return s;
}

TEST_F(CheckpointTest, RoundTripTablesAndMeta) {
  TableStore t1(100, "accounts", TwoColSchema());
  for (int64_t i = 0; i < 50; i++) {
    ASSERT_TRUE(
        t1.Insert({Value::BigInt(i), Value::Varchar("row" + std::to_string(i))})
            .ok());
  }
  ASSERT_TRUE(t1.CreateIndex("by_payload", {1}, false).ok());
  TableStore t2(101, "empty", TwoColSchema());

  std::string meta = "catalog-meta-blob";
  ASSERT_TRUE(
      WriteCheckpoint(Path("ckpt"), Slice(meta), {&t1, &t2}).ok());

  auto loaded = ReadCheckpoint(Path("ckpt"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(std::string(loaded->meta.begin(), loaded->meta.end()), meta);
  ASSERT_EQ(loaded->tables.size(), 2u);
  EXPECT_EQ(loaded->tables[0]->table_id(), 100u);
  EXPECT_EQ(loaded->tables[0]->name(), "accounts");
  EXPECT_EQ(loaded->tables[0]->row_count(), 50u);
  ASSERT_EQ(loaded->tables[0]->indexes().size(), 1u);
  EXPECT_EQ(loaded->tables[0]->indexes()[0]->tree.size(), 50u);
  EXPECT_EQ(loaded->tables[1]->row_count(), 0u);

  const Row* row = loaded->tables[0]->Get({Value::BigInt(7)});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1].string_value(), "row7");
}

TEST_F(CheckpointTest, MissingFileIsNotFound) {
  EXPECT_TRUE(ReadCheckpoint(Path("nope")).status().IsNotFound());
}

TEST_F(CheckpointTest, CorruptionDetected) {
  TableStore t1(100, "t", TwoColSchema());
  ASSERT_TRUE(t1.Insert({Value::BigInt(1), Value::Varchar("x")}).ok());
  ASSERT_TRUE(WriteCheckpoint(Path("ckpt"), Slice(std::string("m")), {&t1}).ok());

  std::fstream f(Path("ckpt"), std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-2, std::ios::end);
  f.put('\xAA');
  f.close();

  EXPECT_TRUE(ReadCheckpoint(Path("ckpt")).status().IsCorruption());
}

TEST_F(CheckpointTest, SchemaRoundTripPreservesFlags) {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("gone", DataType::kInt, true);
  s.mutable_column(1)->dropped = true;
  s.AddColumn("sys", DataType::kBigInt, true, 0, true);
  s.SetPrimaryKey({0});

  std::vector<uint8_t> buf;
  EncodeSchema(s, &buf);
  Decoder dec{Slice(buf)};
  auto decoded = DecodeSchema(&dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_columns(), 3u);
  EXPECT_TRUE(decoded->column(1).dropped);
  EXPECT_TRUE(decoded->column(2).hidden);
  EXPECT_EQ(decoded->column(1).column_id, 2u);
  EXPECT_EQ(decoded->key_ordinals(), (std::vector<size_t>{0}));
  EXPECT_EQ(decoded->next_column_id(), s.next_column_id());
}

}  // namespace
}  // namespace sqlledger
