// Durability and recovery tests: reopen after clean shutdown, crash
// recovery from checkpoint + WAL tail (paper §3.3.2), digest stability
// across recovery, and point-in-time-restore incarnations (paper §3.6).

#include <gtest/gtest.h>

#include <fstream>

#include "ledger/digest_store.h"
#include "ledger/verifier.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class RecoveryTest : public TempDirTest {
 protected:
  LedgerDatabaseOptions MakeOptions(const std::string& subdir = "db") {
    LedgerDatabaseOptions options;
    options.data_dir = Path(subdir);
    options.database_id = "recoverydb";
    options.block_size = 4;
    options.clock = [this] { return ++clock_; };
    return options;
  }

  std::unique_ptr<LedgerDatabase> Open(const std::string& subdir = "db") {
    auto db = LedgerDatabase::Open(MakeOptions(subdir));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  int64_t clock_ = 1000000;
};

TEST_F(RecoveryTest, ReopenAfterCheckpointRestoresEverything) {
  DatabaseDigest digest;
  {
    auto db = Open();
    ASSERT_TRUE(db->CreateTable("accounts", AccountSchema(),
                                TableKind::kUpdateable)
                    .ok());
    for (int i = 0; i < 6; i++) {
      auto txn = db->Begin("app");
      ASSERT_TRUE(db->Insert(*txn, "accounts",
                             {VS("acct" + std::to_string(i)), VB(i)})
                      .ok());
      ASSERT_TRUE(db->Commit(*txn).ok());
    }
    auto d = db->GenerateDigest();
    ASSERT_TRUE(d.ok());
    digest = *d;
    ASSERT_TRUE(db->Checkpoint().ok());
  }

  auto db = Open();
  auto txn = db->Begin("app");
  auto rows = db->Scan(*txn, "accounts");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);
  ASSERT_TRUE(db->Commit(*txn).ok());

  // The pre-restart digest still verifies against the recovered state.
  auto report = VerifyLedger(db.get(), {digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(RecoveryTest, CrashRecoveryReplaysWalTail) {
  DatabaseDigest digest;
  uint64_t committed;
  {
    auto db = Open();
    ASSERT_TRUE(db->CreateTable("accounts", AccountSchema(),
                                TableKind::kUpdateable)
                    .ok());
    // CreateTable checkpoints; everything after lives only in the WAL.
    for (int i = 0; i < 9; i++) {
      auto txn = db->Begin("app");
      ASSERT_TRUE(db->Insert(*txn, "accounts",
                             {VS("acct" + std::to_string(i)), VB(i)})
                      .ok());
      ASSERT_TRUE(db->Commit(*txn).ok());
    }
    auto txn = db->Begin("app");
    ASSERT_TRUE(db->Update(*txn, "accounts", {VS("acct0"), VB(100)}).ok());
    ASSERT_TRUE(db->Commit(*txn).ok());
    auto d = db->GenerateDigest();
    ASSERT_TRUE(d.ok());
    digest = *d;
    committed = db->committed_txn_count();
    // NO checkpoint, no clean shutdown: destructor simulates the crash
    // (state is only in checkpoint-at-DDL + WAL).
  }

  auto db = Open();
  EXPECT_EQ(db->committed_txn_count(), committed);
  auto txn = db->Begin("app");
  auto row = db->Get(*txn, "accounts", {VS("acct0")});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsInt64(), 100);
  auto rows = db->Scan(*txn, "accounts");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 9u);
  ASSERT_TRUE(db->Commit(*txn).ok());

  // History survived too.
  auto ref = db->GetTableRef("accounts");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->history->row_count(), 1u);

  // The digest issued before the crash verifies after recovery — block
  // closes are replayed deterministically.
  auto report = VerifyLedger(db.get(), {digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(RecoveryTest, RecoveryAfterCheckpointPlusMoreTraffic) {
  DatabaseDigest d1;
  {
    auto db = Open();
    ASSERT_TRUE(db->CreateTable("t", SimpleUserSchema(),
                                TableKind::kUpdateable)
                    .ok());
    for (int i = 0; i < 5; i++)
      ASSERT_TRUE(InsertOne(db.get(), "t", i, "pre").ok());
    auto d = db->GenerateDigest();
    ASSERT_TRUE(d.ok());
    d1 = *d;
    ASSERT_TRUE(db->Checkpoint().ok());
    for (int i = 5; i < 11; i++)
      ASSERT_TRUE(InsertOne(db.get(), "t", i, "post").ok());
    // crash
  }
  auto db = Open();
  auto txn = db->Begin("app");
  auto rows = db->Scan(*txn, "t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 11u);
  ASSERT_TRUE(db->Commit(*txn).ok());

  auto d2 = db->GenerateDigest();
  ASSERT_TRUE(d2.ok());
  auto report = VerifyLedger(db.get(), {d1, *d2});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  // The chain across the crash is intact.
  auto derivable = db->database_ledger()->VerifyDigestChain(d1, *d2);
  ASSERT_TRUE(derivable.ok());
  EXPECT_TRUE(*derivable);
}

TEST_F(RecoveryTest, TransactionIdsResumeAfterRecovery) {
  uint64_t last_txn_id;
  {
    auto db = Open();
    ASSERT_TRUE(
        db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
    ASSERT_TRUE(InsertOne(db.get(), "t", 1, "x", &last_txn_id).ok());
  }
  auto db = Open();
  auto txn = db->Begin("app");
  ASSERT_TRUE(txn.ok());
  EXPECT_GT((*txn)->id(), last_txn_id);
  db->Abort(*txn);
}

TEST_F(RecoveryTest, BaselineModeRecoversWithoutLedger) {
  // A ledger-disabled (baseline) database still gets WAL durability.
  {
    LedgerDatabaseOptions options = MakeOptions();
    options.enable_ledger = false;
    auto db = LedgerDatabase::Open(std::move(options));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("t", SimpleUserSchema(),
                                   TableKind::kUpdateable)
                    .ok());
    for (int i = 0; i < 5; i++)
      ASSERT_TRUE(InsertOne(db->get(), "t", i, "x").ok());
    // crash
  }
  LedgerDatabaseOptions options = MakeOptions();
  options.enable_ledger = false;
  auto db = LedgerDatabase::Open(std::move(options));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto txn = (*db)->Begin("app");
  auto rows = (*db)->Scan(*txn, "t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
  ASSERT_TRUE((*db)->Commit(*txn).ok());
}

TEST_F(RecoveryTest, MismatchedLedgerModeRejected) {
  {
    auto db = Open();
    ASSERT_TRUE(
        db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  }
  LedgerDatabaseOptions options = MakeOptions();
  options.enable_ledger = false;
  EXPECT_FALSE(LedgerDatabase::Open(std::move(options)).ok());
}

TEST_F(RecoveryTest, RestoreHelperCreatesNewIncarnation) {
  std::string original_create_time;
  DatabaseDigest digest;
  {
    auto db = Open();
    ASSERT_TRUE(
        db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
    for (int i = 0; i < 4; i++)
      ASSERT_TRUE(InsertOne(db.get(), "t", i, "v").ok());
    auto d = db->GenerateDigest();
    ASSERT_TRUE(d.ok());
    digest = *d;
    ASSERT_TRUE(db->Checkpoint().ok());
    original_create_time = db->create_time();
  }

  auto restored = LedgerDatabase::Restore(Path("db"), MakeOptions("pitr"));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_NE((*restored)->create_time(), original_create_time);
  // Restored state holds the data and verifies against the old digest.
  auto txn = (*restored)->Begin("app");
  auto rows = (*restored)->Scan(*txn, "t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
  ASSERT_TRUE((*restored)->Commit(*txn).ok());
  auto report = VerifyLedger(restored->get(), {digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();

  // Guard rails.
  EXPECT_FALSE(LedgerDatabase::Restore(Path("db"), MakeOptions("db")).ok());
  EXPECT_TRUE(LedgerDatabase::Restore(Path("nonexistent"),
                                      MakeOptions("pitr2"))
                  .status()
                  .IsNotFound());
}

TEST_F(RecoveryTest, RestoreCreatesNewIncarnation) {
  std::string original_create_time;
  {
    auto db = Open();
    ASSERT_TRUE(
        db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
    ASSERT_TRUE(InsertOne(db.get(), "t", 1, "x").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    original_create_time = db->create_time();
  }
  // Simulate a point-in-time restore: copy the data directory and open the
  // copy as a restored database.
  std::filesystem::copy(Path("db"), Path("restored"),
                        std::filesystem::copy_options::recursive);
  LedgerDatabaseOptions options = MakeOptions("restored");
  options.force_new_incarnation = true;
  auto restored = LedgerDatabase::Open(std::move(options));
  ASSERT_TRUE(restored.ok());
  EXPECT_NE((*restored)->create_time(), original_create_time);

  // Digests of both incarnations coexist in the store.
  InMemoryDigestStore store;
  auto reopened = Open();
  auto d_orig = reopened->GenerateDigest();
  ASSERT_TRUE(d_orig.ok());
  ASSERT_TRUE(store.Upload(*d_orig).ok());
  auto d_restored = (*restored)->GenerateDigest();
  ASSERT_TRUE(d_restored.ok());
  ASSERT_TRUE(store.Upload(*d_restored).ok());
  EXPECT_EQ(store.ListAll()->size(), 2u);
  EXPECT_NE(d_orig->database_create_time, d_restored->database_create_time);
}

TEST_F(RecoveryTest, LeftoverCheckpointTempFileIsIgnored) {
  {
    auto db = Open();
    ASSERT_TRUE(
        db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
    ASSERT_TRUE(InsertOne(db.get(), "t", 1, "x").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  // A crash mid-checkpoint leaves a partially written temp file; recovery
  // must load the intact previous checkpoint.
  {
    std::ofstream garbage(Path("db") + "/checkpoint.sldb.tmp");
    garbage << "half-written nonsense";
  }
  auto db = Open();
  auto txn = db->Begin("app");
  EXPECT_TRUE(db->Get(*txn, "t", {Value::BigInt(1)}).ok());
  ASSERT_TRUE(db->Commit(*txn).ok());
}

TEST_F(RecoveryTest, TornNewestCheckpointFallsBackToPreviousGeneration) {
  {
    auto db = Open();
    ASSERT_TRUE(
        db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
    for (int i = 0; i < 3; i++)
      ASSERT_TRUE(InsertOne(db.get(), "t", i, "gen1").ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // superseded -> checkpoint.sldb.prev
    for (int i = 3; i < 6; i++)
      ASSERT_TRUE(InsertOne(db.get(), "t", i, "gen2").ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // the generation we corrupt
    for (int i = 6; i < 8; i++)
      ASSERT_TRUE(InsertOne(db.get(), "t", i, "tail").ok());
    // crash
  }
  // Storage rot tears the newest checkpoint. Recovery must fall back to the
  // previous generation and reach the same state by replaying the rotated
  // WAL plus the live tail.
  {
    std::fstream f(Path("db") + "/checkpoint.sldb",
                   std::ios::in | std::ios::out | std::ios::binary);
    char byte = 0;
    f.seekg(30);
    f.get(byte);
    f.seekp(30);
    f.put(static_cast<char>(byte ^ 0xFF));
  }
  auto db = Open();
  auto txn = db->Begin("app");
  auto rows = db->Scan(*txn, "t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 8u);
  ASSERT_TRUE(db->Commit(*txn).ok());
  auto digest = db->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(RecoveryTest, MissingNewestCheckpointFallsBackToPreviousGeneration) {
  // The crash window between WriteCheckpoint's two renames leaves only the
  // ".prev" generation on disk. That must still open and recover.
  {
    auto db = Open();
    ASSERT_TRUE(
        db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
    for (int i = 0; i < 4; i++)
      ASSERT_TRUE(InsertOne(db.get(), "t", i, "x").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  std::filesystem::rename(Path("db") + "/checkpoint.sldb",
                          Path("db") + "/checkpoint.sldb.prev");
  auto db = Open();
  auto txn = db->Begin("app");
  auto rows = db->Scan(*txn, "t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
  ASSERT_TRUE(db->Commit(*txn).ok());
}

TEST_F(RecoveryTest, DroppedTableSurvivesRecovery) {
  DatabaseDigest digest;
  {
    auto db = Open();
    ASSERT_TRUE(
        db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
    ASSERT_TRUE(InsertOne(db.get(), "t", 1, "x").ok());
    ASSERT_TRUE(db->DropTable("t").ok());
    auto d = db->GenerateDigest();
    ASSERT_TRUE(d.ok());
    digest = *d;
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  auto db = Open();
  EXPECT_TRUE(db->GetTableRef("t").status().IsNotFound());
  // The dropped table's data is still present and verifiable by id.
  auto report = VerifyLedger(db.get(), {digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  // The name can be reused after recovery.
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
}

TEST_F(RecoveryTest, DoubleCrashRecovery) {
  // Recover, add more traffic, crash again without checkpoint, recover.
  {
    auto db = Open();
    ASSERT_TRUE(
        db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
    for (int i = 0; i < 3; i++)
      ASSERT_TRUE(InsertOne(db.get(), "t", i, "one").ok());
  }
  {
    auto db = Open();
    for (int i = 3; i < 6; i++)
      ASSERT_TRUE(InsertOne(db.get(), "t", i, "two").ok());
  }
  auto db = Open();
  auto txn = db->Begin("app");
  auto rows = db->Scan(*txn, "t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);
  ASSERT_TRUE(db->Commit(*txn).ok());
  auto digest = db->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(RecoveryTest, SchemaChangesSurviveRecovery) {
  {
    auto db = Open();
    ASSERT_TRUE(db->CreateTable("accounts", AccountSchema(),
                                TableKind::kUpdateable)
                    .ok());
    ASSERT_TRUE(db->AddColumn("accounts", "email", DataType::kVarchar).ok());
    ASSERT_TRUE(db->DropColumn("accounts", "email").ok());
    ASSERT_TRUE(
        db->CreateIndex("accounts", "by_balance", {"balance"}, false).ok());
  }
  auto db = Open();
  auto ref = db->GetTableRef("accounts");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->main->schema().FindColumn("email"), -1);
  EXPECT_NE(ref->main->FindIndex("by_balance"), nullptr);
  auto digest = db->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

}  // namespace
}  // namespace sqlledger
