// Cross-feature interaction tests: scenarios that thread one feature's
// output through another's machinery — truncation feeding digest
// verification, savepoint partial rollbacks feeding the Merkle chain across
// a crash-recovery cycle. Each of these pairings has historically hidden
// bugs no per-feature test can see.

#include <gtest/gtest.h>

#include "ledger/receipt.h"
#include "ledger/truncation.h"
#include "ledger/verifier.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class CrossFeatureTest : public TempDirTest {
 protected:
  LedgerDatabaseOptions MakeOptions(Env* env = nullptr) {
    LedgerDatabaseOptions options;
    options.data_dir = Path("db");
    options.database_id = "crossdb";
    options.block_size = 4;
    options.sync_wal = true;
    options.env = env;
    options.clock = [this] { return ++clock_; };
    return options;
  }

  Status InsertRow(LedgerDatabase* db, int64_t id, const std::string& payload,
                   uint64_t* txn_id = nullptr) {
    return InsertOne(db, "t", id, payload, txn_id);
  }

  int64_t clock_ = 1000000;
};

// Truncation -> digest verification: after blocks are physically removed,
// verification against digests of *retained* blocks must stay clean, a
// digest of a *truncated* block must surface as a violation (stale trusted
// digests have to be pruned, not silently accepted), and digests generated
// after the truncation must verify too.
TEST_F(CrossFeatureTest, TruncationThenDigestVerification) {
  auto db = LedgerDatabase::Open(MakeOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(
      (*db)->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());

  // Three closed blocks of churn; digest after every block's worth.
  std::vector<DatabaseDigest> digests;
  for (int i = 0; i < 12; i++) {
    ASSERT_TRUE(InsertRow(db->get(), i, "v" + std::to_string(i)).ok());
    if (i % 4 == 3) {
      auto d = (*db)->GenerateDigest();
      ASSERT_TRUE(d.ok()) << d.status().ToString();
      digests.push_back(*d);
    }
  }
  // Retire the early rows so truncated blocks hold no live anchors.
  for (int i = 0; i < 8; i++) {
    auto txn = (*db)->Begin("app");
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*db)->Delete(*txn, "t", {VB(i)}).ok());
    ASSERT_TRUE((*db)->Commit(*txn).ok());
  }
  auto d = (*db)->GenerateDigest();
  ASSERT_TRUE(d.ok());
  digests.push_back(*d);

  uint64_t below = 2;
  ASSERT_TRUE(TruncateLedger(db->get(), below, digests).ok());

  // Split the trusted set by the cutoff.
  std::vector<DatabaseDigest> retained, truncated;
  for (const DatabaseDigest& dig : digests)
    (dig.block_id >= below ? retained : truncated).push_back(dig);
  ASSERT_FALSE(retained.empty());
  ASSERT_FALSE(truncated.empty());

  auto clean = VerifyLedger(db->get(), retained);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(clean->ok()) << clean->Summary();

  auto stale = VerifyLedger(db->get(), truncated);
  ASSERT_TRUE(stale.ok());
  ASSERT_FALSE(stale->ok());
  EXPECT_EQ(stale->violations[0].invariant, 1);

  // Surviving rows are intact and a fresh digest covers the re-homed data.
  auto txn = (*db)->Begin("app");
  ASSERT_TRUE(txn.ok());
  auto rows = (*db)->Scan(*txn, "t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
  (*db)->Abort(*txn);

  auto fresh = (*db)->GenerateDigest();
  ASSERT_TRUE(fresh.ok());
  retained.push_back(*fresh);
  auto after = VerifyLedger(db->get(), retained);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->ok()) << after->Summary();
}

// Savepoint partial rollback -> Merkle chain -> crash recovery: only the
// statements surviving the rollback may be hashed into the transaction's
// entry, and that entry must replay identically from the WAL after a crash —
// verification, the recovered row image, and the transaction's receipt all
// have to agree.
TEST_F(CrossFeatureTest, SavepointRollbackMerkleSurvivesCrashRecovery) {
  FaultInjectionEnv env;
  uint64_t txn_id = 0;
  {
    auto db = LedgerDatabase::Open(MakeOptions(&env));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(
        (*db)->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable)
            .ok());

    auto txn = (*db)->Begin("app");
    ASSERT_TRUE(txn.ok());
    txn_id = (*txn)->id();
    ASSERT_TRUE((*db)->Insert(*txn, "t", {VB(1), VS("keep")}).ok());
    ASSERT_TRUE((*db)->Savepoint(*txn, "sp").ok());
    ASSERT_TRUE((*db)->Insert(*txn, "t", {VB(2), VS("discard")}).ok());
    ASSERT_TRUE((*db)->Update(*txn, "t", {VB(1), VS("clobbered")}).ok());
    ASSERT_TRUE((*db)->RollbackToSavepoint(*txn, "sp").ok());
    ASSERT_TRUE((*db)->Insert(*txn, "t", {VB(3), VS("late")}).ok());
    ASSERT_TRUE((*db)->Commit(*txn).ok());

    // More committed work so the block closes and the entry gets a receipt.
    for (int i = 10; i < 14; i++)
      ASSERT_TRUE(InsertRow(db->get(), i, "pad").ok());
    ASSERT_TRUE((*db)->GenerateDigest().ok());
    env.SimulateCrash();
  }

  // A crashed env rejects all further I/O; the restarted process gets a
  // fresh one over the surviving files, exactly like the sim driver.
  FaultInjectionEnv env2;
  auto db = LedgerDatabase::Open(MakeOptions(&env2));
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // Recovered image: the rolled-back statements left no trace.
  auto txn = (*db)->Begin("app");
  ASSERT_TRUE(txn.ok());
  auto row1 = (*db)->Get(*txn, "t", {VB(1)});
  ASSERT_TRUE(row1.ok());
  EXPECT_EQ((*row1)[1].string_value(), "keep");
  EXPECT_FALSE((*db)->Get(*txn, "t", {VB(2)}).ok());
  auto row3 = (*db)->Get(*txn, "t", {VB(3)});
  ASSERT_TRUE(row3.ok());
  EXPECT_EQ((*row3)[1].string_value(), "late");
  (*db)->Abort(*txn);

  // The recovered chain verifies end to end...
  auto digest = (*db)->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db->get(), {*digest});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();

  // ...and the partially-rolled-back transaction's Merkle proof replays
  // against the recovered block root.
  auto receipt = MakeTransactionReceipt(db->get(), txn_id);
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_TRUE(VerifyTransactionReceipt(*receipt, (*db)->signer()));
}

}  // namespace
}  // namespace sqlledger
