// Transaction receipt tests (paper §5.1): offline verification, JSON
// round-trip, and non-repudiation after the ledger is destroyed.

#include <gtest/gtest.h>

#include "ledger/receipt.h"
#include "test_util.h"

namespace sqlledger {
namespace {

class ReceiptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenTestDb(/*block_size=*/4);
    ASSERT_TRUE(
        db_->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable)
            .ok());
    for (int i = 0; i < 6; i++) {
      uint64_t txn_id;
      ASSERT_TRUE(
          InsertOne(db_.get(), "t", i, "row" + std::to_string(i), &txn_id)
              .ok());
      txn_ids_.push_back(txn_id);
    }
    // Close the open block so receipts can be issued for all transactions.
    ASSERT_TRUE(db_->GenerateDigest().ok());
  }

  std::unique_ptr<LedgerDatabase> db_;
  std::vector<uint64_t> txn_ids_;
};

TEST_F(ReceiptTest, IssueAndVerify) {
  for (uint64_t txn_id : txn_ids_) {
    auto receipt = MakeTransactionReceipt(db_.get(), txn_id);
    ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
    EXPECT_EQ(receipt->entry.txn_id, txn_id);
    EXPECT_TRUE(VerifyTransactionReceipt(*receipt, db_->signer()));
  }
}

TEST_F(ReceiptTest, JsonRoundTripStillVerifies) {
  auto receipt = MakeTransactionReceipt(db_.get(), txn_ids_[2]);
  ASSERT_TRUE(receipt.ok());
  std::string json = receipt->ToJson();
  auto parsed = TransactionReceipt::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(VerifyTransactionReceipt(*parsed, db_->signer()));
  EXPECT_EQ(parsed->entry.user_name, receipt->entry.user_name);
  EXPECT_EQ(parsed->entry.commit_ts_micros, receipt->entry.commit_ts_micros);
}

TEST_F(ReceiptTest, SurvivesLedgerDestruction) {
  // Non-repudiation: the receipt keeps verifying after the attacker wipes
  // the entire ledger.
  auto receipt = MakeTransactionReceipt(db_.get(), txn_ids_[1]);
  ASSERT_TRUE(receipt.ok());
  std::string json = receipt->ToJson();

  TableStore* txns = db_->database_ledger()->transactions_table_for_testing();
  TableStore* blocks = db_->database_ledger()->blocks_table_for_testing();
  txns->mutable_clustered()->Clear();
  blocks->mutable_clustered()->Clear();

  auto parsed = TransactionReceipt::FromJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(VerifyTransactionReceipt(*parsed, db_->signer()));
}

TEST_F(ReceiptTest, TamperedEntryFails) {
  auto receipt = MakeTransactionReceipt(db_.get(), txn_ids_[0]);
  ASSERT_TRUE(receipt.ok());
  TransactionReceipt forged = *receipt;
  forged.entry.user_name = "someone-else";
  EXPECT_FALSE(VerifyTransactionReceipt(forged, db_->signer()));
  forged = *receipt;
  forged.entry.commit_ts_micros += 1;
  EXPECT_FALSE(VerifyTransactionReceipt(forged, db_->signer()));
  forged = *receipt;
  ASSERT_FALSE(forged.entry.table_roots.empty());
  forged.entry.table_roots[0].second.bytes[0] ^= 1;
  EXPECT_FALSE(VerifyTransactionReceipt(forged, db_->signer()));
}

TEST_F(ReceiptTest, TamperedProofFails) {
  auto receipt = MakeTransactionReceipt(db_.get(), txn_ids_[0]);
  ASSERT_TRUE(receipt.ok());
  TransactionReceipt forged = *receipt;
  if (!forged.proof.steps.empty()) {
    forged.proof.steps[0].sibling.bytes[3] ^= 1;
    EXPECT_FALSE(VerifyTransactionReceipt(forged, db_->signer()));
  }
  forged = *receipt;
  forged.proof.leaf_index ^= 1;
  EXPECT_FALSE(VerifyTransactionReceipt(forged, db_->signer()));
}

TEST_F(ReceiptTest, ForgedSignatureFails) {
  auto receipt = MakeTransactionReceipt(db_.get(), txn_ids_[0]);
  ASSERT_TRUE(receipt.ok());
  TransactionReceipt forged = *receipt;
  forged.signature[0] ^= 1;
  EXPECT_FALSE(VerifyTransactionReceipt(forged, db_->signer()));

  // A receipt signed under a different key does not verify either.
  HmacSigner other("other", {9, 9, 9});
  EXPECT_FALSE(VerifyTransactionReceipt(*receipt, other));
}

TEST_F(ReceiptTest, OpenBlockTransactionIsBusy) {
  uint64_t txn_id;
  ASSERT_TRUE(InsertOne(db_.get(), "t", 100, "late", &txn_id).ok());
  auto receipt = MakeTransactionReceipt(db_.get(), txn_id);
  EXPECT_EQ(receipt.status().code(), StatusCode::kBusy);
  // After a digest closes the block, the receipt can be issued.
  ASSERT_TRUE(db_->GenerateDigest().ok());
  receipt = MakeTransactionReceipt(db_.get(), txn_id);
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_TRUE(VerifyTransactionReceipt(*receipt, db_->signer()));
}

TEST_F(ReceiptTest, UnknownTransactionIsNotFound) {
  EXPECT_TRUE(
      MakeTransactionReceipt(db_.get(), 987654).status().IsNotFound());
}

TEST_F(ReceiptTest, OneSignaturePerBlockAmortization) {
  // All receipts from one block carry the identical signed root — one
  // signing operation amortized over the block (paper §5.1).
  auto r0 = MakeTransactionReceipt(db_.get(), txn_ids_[0]);
  auto r1 = MakeTransactionReceipt(db_.get(), txn_ids_[1]);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r0->entry.block_id, r1->entry.block_id);
  EXPECT_EQ(r0->transactions_root, r1->transactions_root);
  EXPECT_EQ(r0->signature, r1->signature);
}

}  // namespace
}  // namespace sqlledger
