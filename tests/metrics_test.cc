// Tier-1 coverage for the observability layer (DESIGN.md §13): histogram
// bucket boundaries and the overflow bucket, concurrent recording, snapshot
// merge algebra, percentile estimation, metric-name validation, trace
// ring-buffer wraparound, and byte-identical JSON under a pinned clock.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/metrics.h"
#include "util/trace.h"

namespace sqlledger {
namespace {

// ---- Histogram bucket layout ----------------------------------------

TEST(HistogramBuckets, BoundariesMatchBase2Layout) {
  // Bucket 0 holds exactly 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(HistogramSnapshot::BucketLowerBound(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(0), 1u);
  EXPECT_EQ(HistogramSnapshot::BucketLowerBound(1), 1u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(1), 2u);
  EXPECT_EQ(HistogramSnapshot::BucketLowerBound(5), 16u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(5), 32u);

  EXPECT_EQ(HistogramSnapshot::BucketIndex(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(1), 1u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(2), 2u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(3), 2u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(4), 3u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(1023), 10u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(1024), 11u);

  // Every bucket's bounds agree with BucketIndex: lower bound maps into the
  // bucket, upper bound maps into the next.
  for (size_t i = 0; i + 1 < HistogramSnapshot::kNumBuckets; i++) {
    EXPECT_EQ(HistogramSnapshot::BucketIndex(
                  HistogramSnapshot::BucketLowerBound(i)),
              i);
    EXPECT_EQ(HistogramSnapshot::BucketIndex(
                  HistogramSnapshot::BucketUpperBound(i)),
              i + 1);
  }
}

TEST(HistogramBuckets, OverflowBucketCatchesHugeValues) {
  constexpr size_t kLast = HistogramSnapshot::kNumBuckets - 1;
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(kLast), UINT64_MAX);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(UINT64_MAX), kLast);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(uint64_t{1} << 50), kLast);

  Histogram h;
  const uint64_t huge = uint64_t{1} << 45;
  h.Record(huge);
  h.Record(huge + 7);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.buckets[kLast], 2u);
  EXPECT_EQ(s.max, huge + 7);
  // The overflow bucket has no finite upper bound to interpolate against;
  // percentiles landing there report the exact tracked max.
  EXPECT_EQ(s.Percentile(99), static_cast<double>(huge + 7));
}

TEST(Histogram, CountSumMaxAndPercentiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; v++) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 5050u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
  // Buckets are coarse (base 2), so percentile estimates are interpolated;
  // they must stay within the holding bucket and never exceed the max.
  double p50 = s.Percentile(50);
  EXPECT_GE(p50, 32.0);
  EXPECT_LT(p50, 64.0);
  EXPECT_LE(s.Percentile(99), 100.0);
  // The final rank reports the exact max, not an interpolation.
  EXPECT_EQ(s.Percentile(100), 100.0);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h;
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.Percentile(50), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; i++)
        h.Record(static_cast<uint64_t>(t) * kPerThread + i);
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.max, kThreads * kPerThread - 1);
  const uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(s.sum, n * (n - 1) / 2);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(HistogramSnapshot, MergeIsCommutativeAndAssociative) {
  Histogram ha, hb, hc;
  for (uint64_t v = 0; v < 50; v++) ha.Record(v * 3);
  for (uint64_t v = 0; v < 70; v++) hb.Record(v * 17 + 1);
  for (uint64_t v = 0; v < 30; v++) hc.Record(v * 1000);
  HistogramSnapshot a = ha.Snapshot(), b = hb.Snapshot(), c = hc.Snapshot();

  HistogramSnapshot ab = a;
  ab.Merge(b);
  HistogramSnapshot ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab.count, ba.count);
  EXPECT_EQ(ab.sum, ba.sum);
  EXPECT_EQ(ab.max, ba.max);
  EXPECT_EQ(ab.buckets, ba.buckets);

  HistogramSnapshot ab_c = ab;
  ab_c.Merge(c);
  HistogramSnapshot bc = b;
  bc.Merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.Merge(bc);
  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.sum, a_bc.sum);
  EXPECT_EQ(ab_c.max, a_bc.max);
  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  EXPECT_EQ(ab_c.count, 150u);
}

// ---- Registry --------------------------------------------------------

TEST(MetricRegistry, GetReturnsStablePointersPerName) {
  MetricRegistry reg;
  Counter* c1 = reg.GetCounter("wal.syncs_total");
  Counter* c2 = reg.GetCounter("wal.syncs_total");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, reg.GetCounter("commit.txns_total"));
  Histogram* h1 = reg.GetHistogram("wal.sync_micros");
  EXPECT_EQ(h1, reg.GetHistogram("wal.sync_micros"));

  c1->Add(3);
  reg.GetGauge("digest.outbox_depth")->Set(5);
  h1->Record(12);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("wal.syncs_total"), 3u);
  EXPECT_EQ(snap.gauges.at("digest.outbox_depth"), 5);
  EXPECT_EQ(snap.histograms.at("wal.sync_micros").count, 1u);
}

TEST(MetricRegistry, PinnedClockMakesJsonByteIdentical) {
  auto run = [] {
    int64_t t = 0;
    MetricRegistry reg([&t] { return t += 10; });
    reg.GetCounter("commit.txns_total")->Add(42);
    reg.GetGauge("digest.breaker_state")->Set(1);
    Histogram* h = reg.GetHistogram("wal.sync_micros");
    LatencyTimer timer(&reg, h);
    timer.Stop();
    h->Record(100);
    return MetricsToJson(reg.Snapshot()).Dump();
  };
  std::string first = run();
  EXPECT_EQ(first, run());
  // Shape: the documented top-level sections are present.
  EXPECT_NE(first.find("\"counters\""), std::string::npos);
  EXPECT_NE(first.find("\"gauges\""), std::string::npos);
  EXPECT_NE(first.find("\"histograms\""), std::string::npos);
  EXPECT_NE(first.find("\"commit.txns_total\":42"), std::string::npos);
  EXPECT_NE(first.find("\"p99\""), std::string::npos);
}

TEST(MetricsSnapshotTest, MergeAddsCountersAndHistograms) {
  MetricRegistry a, b;
  a.GetCounter("commit.txns_total")->Add(5);
  b.GetCounter("commit.txns_total")->Add(7);
  b.GetCounter("commit.aborts_total")->Add(1);
  a.GetHistogram("commit.group_size")->Record(4);
  b.GetHistogram("commit.group_size")->Record(9);
  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("commit.txns_total"), 12u);
  EXPECT_EQ(merged.counters.at("commit.aborts_total"), 1u);
  EXPECT_EQ(merged.histograms.at("commit.group_size").count, 2u);
  EXPECT_EQ(merged.histograms.at("commit.group_size").max, 9u);
}

TEST(MetricNames, ValidatorEnforcesSubsystemNounUnit) {
  EXPECT_TRUE(IsValidMetricName("wal.sync_micros"));
  EXPECT_TRUE(IsValidMetricName("commit.group_size"));
  EXPECT_TRUE(IsValidMetricName("digest.outbox_depth"));
  EXPECT_TRUE(IsValidMetricName("verify.blocks_reverified_total"));
  EXPECT_TRUE(IsValidMetricName("digest.breaker_state"));

  EXPECT_FALSE(IsValidMetricName("walSyncs"));           // no dot
  EXPECT_FALSE(IsValidMetricName("wal.syncMicros"));     // camelCase
  EXPECT_FALSE(IsValidMetricName("wal.sync_seconds"));   // unknown unit
  EXPECT_FALSE(IsValidMetricName("Wal.sync_micros"));    // uppercase
  EXPECT_FALSE(IsValidMetricName("wal."));               // empty noun
  EXPECT_FALSE(IsValidMetricName(".sync_micros"));       // empty subsystem
  EXPECT_FALSE(IsValidMetricName("wal.a.b_micros"));     // two dots
}

// ---- Tracer ----------------------------------------------------------

TEST(Tracer, RecordsSpansAndInstantsWithPinnedClock) {
  int64_t t = 1000;
  MetricRegistry reg([&t] { return t += 5; });
  Tracer tracer(&reg, 16);
  tracer.RecordComplete("commit.group", "commit", 100, 40);
  tracer.RecordInstant("digest.breaker", "digest", "from", "healthy");
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].ts_micros, 100);
  EXPECT_EQ(events[0].dur_micros, 40);
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[1].ts_micros, 1005);  // stamped from the pinned clock
  EXPECT_EQ(events[1].arg_name, "from");
  EXPECT_EQ(events[1].arg_value, "healthy");

  std::string json = tracer.ToChromeJson().Dump();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(Tracer, RingWrapsOldestFirstAndCountsDrops) {
  MetricRegistry reg([] { return int64_t{0}; });
  constexpr size_t kCap = 8;
  Tracer tracer(&reg, kCap);
  EXPECT_EQ(tracer.capacity(), kCap);
  for (int i = 0; i < 20; i++)
    tracer.RecordComplete("ev" + std::to_string(i), "test", i, 1);
  EXPECT_EQ(tracer.dropped_count(), 20u - kCap);
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), kCap);
  // The surviving window is the newest kCap events, exported oldest first.
  for (size_t i = 0; i < kCap; i++) {
    EXPECT_EQ(events[i].name, "ev" + std::to_string(20 - kCap + i));
    EXPECT_EQ(events[i].ts_micros, static_cast<int64_t>(20 - kCap + i));
  }
  std::string json = tracer.ToChromeJson().Dump();
  EXPECT_NE(json.find("\"dropped_events\":12"), std::string::npos);
}

TEST(Tracer, DisabledSpanNeverReadsClock) {
  std::atomic<int> reads{0};
  MetricRegistry reg([&reads] {
    reads.fetch_add(1);
    return int64_t{0};
  });
  {
    TraceSpan span(nullptr, "noop", "test");
  }
  LatencyTimer timer(&reg, nullptr);
  timer.Stop();
  EXPECT_EQ(reads.load(), 0);
  // A live span against the pinned registry reads exactly twice.
  Tracer tracer(&reg, 4);
  {
    TraceSpan span(&tracer, "op", "test");
  }
  EXPECT_EQ(reads.load(), 2);
  ASSERT_EQ(tracer.Events().size(), 1u);
}

}  // namespace
}  // namespace sqlledger
