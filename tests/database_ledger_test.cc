// Database Ledger tests: slot assignment, block closing, digest generation,
// chain verification (fork detection), queue draining, proofs.

#include <gtest/gtest.h>

#include "ledger/database_ledger.h"

namespace sqlledger {
namespace {

class DatabaseLedgerTest : public ::testing::Test {
 protected:
  DatabaseLedgerTest()
      : txns_(kLedgerTransactionsTableId, "database_ledger_transactions",
              MakeLedgerTransactionsSchema()),
        blocks_(kLedgerBlocksTableId, "database_ledger_blocks",
                MakeLedgerBlocksSchema()) {}

  std::unique_ptr<DatabaseLedger> MakeLedger(uint64_t block_size) {
    DatabaseLedgerOptions options;
    options.block_size = block_size;
    options.clock = [this] { return ++clock_; };
    return std::make_unique<DatabaseLedger>(&txns_, &blocks_,
                                            std::move(options));
  }

  TransactionEntry MakeEntry(DatabaseLedger* ledger, uint64_t txn_id) {
    auto [block, ordinal] = ledger->AssignSlot();
    TransactionEntry entry;
    entry.txn_id = txn_id;
    entry.block_id = block;
    entry.block_ordinal = ordinal;
    entry.commit_ts_micros = ++clock_;
    entry.user_name = "u" + std::to_string(txn_id);
    Hash256 root;
    root.bytes[0] = static_cast<uint8_t>(txn_id);
    entry.table_roots.emplace_back(100, root);
    return entry;
  }

  TableStore txns_;
  TableStore blocks_;
  int64_t clock_ = 0;
};

TEST_F(DatabaseLedgerTest, EntryCanonicalBytesRoundTrip) {
  auto ledger_ptr = MakeLedger(10);
  DatabaseLedger& ledger = *ledger_ptr;
  TransactionEntry entry = MakeEntry(&ledger, 42);
  auto decoded = TransactionEntry::FromCanonicalBytes(
      Slice(entry.CanonicalBytes()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->txn_id, 42u);
  EXPECT_EQ(decoded->user_name, "u42");
  EXPECT_EQ(decoded->LeafHash(), entry.LeafHash());
}

TEST_F(DatabaseLedgerTest, SlotsAreSequential) {
  auto ledger_ptr = MakeLedger(100);
  DatabaseLedger& ledger = *ledger_ptr;
  for (uint64_t i = 0; i < 5; i++) {
    auto [block, ordinal] = ledger.AssignSlot();
    EXPECT_EQ(block, 0u);
    EXPECT_EQ(ordinal, i);
  }
}

TEST_F(DatabaseLedgerTest, BlockClosesWhenFull) {
  auto ledger_ptr = MakeLedger(3);
  DatabaseLedger& ledger = *ledger_ptr;
  for (uint64_t i = 1; i <= 7; i++) {
    ASSERT_TRUE(ledger.Append(MakeEntry(&ledger, i)).ok());
  }
  // 7 entries, block size 3: blocks 0 and 1 closed, block 2 open with 1.
  EXPECT_EQ(ledger.closed_block_count(), 2u);
  EXPECT_EQ(ledger.open_block_id(), 2u);
  EXPECT_EQ(ledger.open_block_entry_count(), 1u);
  EXPECT_EQ(ledger.total_entries(), 7u);

  auto block0 = ledger.FindBlock(0);
  ASSERT_TRUE(block0.ok());
  EXPECT_EQ(block0->transaction_count, 3u);
  EXPECT_TRUE(block0->previous_block_hash.IsZero());
  auto block1 = ledger.FindBlock(1);
  ASSERT_TRUE(block1.ok());
  EXPECT_EQ(block1->previous_block_hash, block0->ComputeHash());
}

TEST_F(DatabaseLedgerTest, DigestClosesOpenBlock) {
  auto ledger_ptr = MakeLedger(100);
  DatabaseLedger& ledger = *ledger_ptr;
  for (uint64_t i = 1; i <= 5; i++)
    ASSERT_TRUE(ledger.Append(MakeEntry(&ledger, i)).ok());

  auto digest = ledger.GenerateDigest("db", "t0");
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest->block_id, 0u);
  EXPECT_EQ(ledger.closed_block_count(), 1u);
  EXPECT_EQ(ledger.open_block_id(), 1u);

  auto block = ledger.FindBlock(0);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(digest->block_hash, block->ComputeHash());
}

TEST_F(DatabaseLedgerTest, RepeatedDigestWithoutTrafficIsStable) {
  auto ledger_ptr = MakeLedger(100);
  DatabaseLedger& ledger = *ledger_ptr;
  ASSERT_TRUE(ledger.Append(MakeEntry(&ledger, 1)).ok());
  auto d1 = ledger.GenerateDigest("db", "t0");
  auto d2 = ledger.GenerateDigest("db", "t0");
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->block_id, d2->block_id);
  EXPECT_EQ(d1->block_hash, d2->block_hash);
  EXPECT_EQ(ledger.closed_block_count(), 1u);  // no empty blocks piling up
}

TEST_F(DatabaseLedgerTest, PristineDatabaseDigest) {
  auto ledger_ptr = MakeLedger(100);
  DatabaseLedger& ledger = *ledger_ptr;
  auto digest = ledger.GenerateDigest("db", "t0");
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest->block_id, 0u);
  EXPECT_EQ(ledger.closed_block_count(), 1u);  // initial empty block
}

TEST_F(DatabaseLedgerTest, DigestChainVerifies) {
  auto ledger_ptr = MakeLedger(2);
  DatabaseLedger& ledger = *ledger_ptr;
  ASSERT_TRUE(ledger.Append(MakeEntry(&ledger, 1)).ok());
  auto d1 = ledger.GenerateDigest("db", "t0");
  ASSERT_TRUE(d1.ok());
  for (uint64_t i = 2; i <= 6; i++)
    ASSERT_TRUE(ledger.Append(MakeEntry(&ledger, i)).ok());
  auto d2 = ledger.GenerateDigest("db", "t0");
  ASSERT_TRUE(d2.ok());
  EXPECT_GT(d2->block_id, d1->block_id);

  auto derivable = ledger.VerifyDigestChain(*d1, *d2);
  ASSERT_TRUE(derivable.ok());
  EXPECT_TRUE(*derivable);
  // Self-derivation also holds.
  derivable = ledger.VerifyDigestChain(*d1, *d1);
  ASSERT_TRUE(derivable.ok());
  EXPECT_TRUE(*derivable);
  // Reversed order is not derivable.
  derivable = ledger.VerifyDigestChain(*d2, *d1);
  ASSERT_TRUE(derivable.ok());
  EXPECT_FALSE(*derivable);
}

TEST_F(DatabaseLedgerTest, ForkDetectedByChainVerification) {
  auto ledger_ptr = MakeLedger(2);
  DatabaseLedger& ledger = *ledger_ptr;
  ASSERT_TRUE(ledger.Append(MakeEntry(&ledger, 1)).ok());
  auto d1 = ledger.GenerateDigest("db", "t0");
  ASSERT_TRUE(d1.ok());
  for (uint64_t i = 2; i <= 6; i++)
    ASSERT_TRUE(ledger.Append(MakeEntry(&ledger, i)).ok());
  auto d2 = ledger.GenerateDigest("db", "t0");
  ASSERT_TRUE(d2.ok());

  // Attacker overwrites block 0 (forks the chain).
  auto block0 = ledger.FindBlock(0);
  ASSERT_TRUE(block0.ok());
  BlockRecord forged = *block0;
  forged.transactions_root.bytes[5] ^= 1;
  ASSERT_TRUE(blocks_.Update(BlockRecordToRow(forged)).ok());

  auto derivable = ledger.VerifyDigestChain(*d1, *d2);
  ASSERT_TRUE(derivable.ok());
  EXPECT_FALSE(*derivable);
}

TEST_F(DatabaseLedgerTest, DrainQueuePersistsEntries) {
  auto ledger_ptr = MakeLedger(100);
  DatabaseLedger& ledger = *ledger_ptr;
  for (uint64_t i = 1; i <= 4; i++)
    ASSERT_TRUE(ledger.Append(MakeEntry(&ledger, i)).ok());
  EXPECT_EQ(ledger.queue_depth(), 4u);
  EXPECT_EQ(txns_.row_count(), 0u);

  ASSERT_TRUE(ledger.DrainQueue().ok());
  EXPECT_EQ(ledger.queue_depth(), 0u);
  EXPECT_EQ(txns_.row_count(), 4u);
  // Idempotent.
  ASSERT_TRUE(ledger.DrainQueue().ok());
  EXPECT_EQ(txns_.row_count(), 4u);

  auto found = ledger.FindEntry(3);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->user_name, "u3");
}

TEST_F(DatabaseLedgerTest, FindEntryBeforeDrainSeesQueue) {
  auto ledger_ptr = MakeLedger(100);
  DatabaseLedger& ledger = *ledger_ptr;
  ASSERT_TRUE(ledger.Append(MakeEntry(&ledger, 9)).ok());
  auto found = ledger.FindEntry(9);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->txn_id, 9u);
  EXPECT_TRUE(ledger.FindEntry(10).status().IsNotFound());
}

TEST_F(DatabaseLedgerTest, ProveTransactionInClosedBlock) {
  auto ledger_ptr = MakeLedger(4);
  DatabaseLedger& ledger = *ledger_ptr;
  std::vector<TransactionEntry> entries;
  for (uint64_t i = 1; i <= 4; i++) {
    TransactionEntry entry = MakeEntry(&ledger, i);
    entries.push_back(entry);
    ASSERT_TRUE(ledger.Append(entry).ok());
  }
  ASSERT_EQ(ledger.closed_block_count(), 1u);

  for (const TransactionEntry& entry : entries) {
    auto proof = ledger.ProveTransaction(entry.txn_id);
    ASSERT_TRUE(proof.ok()) << proof.status().ToString();
    auto block = ledger.FindBlock(0);
    ASSERT_TRUE(block.ok());
    EXPECT_TRUE(MerkleTree::VerifyProof(entry.LeafHash(), *proof,
                                        block->transactions_root));
  }
}

TEST_F(DatabaseLedgerTest, ProveTransactionInOpenBlockIsBusy) {
  auto ledger_ptr = MakeLedger(100);
  DatabaseLedger& ledger = *ledger_ptr;
  ASSERT_TRUE(ledger.Append(MakeEntry(&ledger, 1)).ok());
  EXPECT_EQ(ledger.ProveTransaction(1).status().code(), StatusCode::kBusy);
}

TEST_F(DatabaseLedgerTest, LoadFromTablesRestoresState) {
  uint64_t open_entries;
  Hash256 expected_digest_hash;
  {
    auto ledger_ptr = MakeLedger(3);
  DatabaseLedger& ledger = *ledger_ptr;
    for (uint64_t i = 1; i <= 5; i++)
      ASSERT_TRUE(ledger.Append(MakeEntry(&ledger, i)).ok());
    ASSERT_TRUE(ledger.DrainQueue().ok());
    open_entries = ledger.open_block_entry_count();
    auto block = ledger.FindBlock(0);
    expected_digest_hash = block->ComputeHash();
  }
  auto reloaded_ptr = MakeLedger(3);
  DatabaseLedger& reloaded = *reloaded_ptr;
  ASSERT_TRUE(reloaded.LoadFromTables().ok());
  EXPECT_EQ(reloaded.open_block_id(), 1u);
  EXPECT_EQ(reloaded.open_block_entry_count(), open_entries);
  EXPECT_EQ(reloaded.total_entries(), 5u);
  // Appending resumes at the right ordinal and closes correctly.
  ASSERT_TRUE(reloaded.Append(MakeEntry(&reloaded, 6)).ok());
  EXPECT_EQ(reloaded.closed_block_count(), 2u);
  auto block1 = reloaded.FindBlock(1);
  ASSERT_TRUE(block1.ok());
  EXPECT_EQ(block1->previous_block_hash, expected_digest_hash);
}

TEST_F(DatabaseLedgerTest, RecoverEntryIsIdempotent) {
  auto ledger_ptr = MakeLedger(10);
  DatabaseLedger& ledger = *ledger_ptr;
  TransactionEntry entry = MakeEntry(&ledger, 1);
  ASSERT_TRUE(ledger.Append(entry).ok());
  ASSERT_TRUE(ledger.DrainQueue().ok());
  // Replaying the same entry (crash between checkpoint and WAL reset).
  ASSERT_TRUE(ledger.RecoverEntry(entry).ok());
  EXPECT_EQ(ledger.total_entries(), 1u);
}

TEST_F(DatabaseLedgerTest, RecoverEntryReclosesPriorBlocks) {
  // Entries addressed past the open block imply a digest-time close.
  auto ledger_ptr = MakeLedger(10);
  DatabaseLedger& ledger = *ledger_ptr;
  TransactionEntry e1 = MakeEntry(&ledger, 1);
  ASSERT_TRUE(ledger.Append(e1).ok());
  auto digest = ledger.GenerateDigest("db", "t0");
  ASSERT_TRUE(digest.ok());
  TransactionEntry e2 = MakeEntry(&ledger, 2);
  ASSERT_TRUE(ledger.Append(e2).ok());
  ASSERT_TRUE(ledger.DrainQueue().ok());

  // Simulate crash recovery on fresh system-table copies: block rows were
  // persisted only via DrainQueue/checkpoint in the real engine; here we
  // rebuild from an empty blocks table and replay both entries.
  TableStore txns2(kLedgerTransactionsTableId, "t", MakeLedgerTransactionsSchema());
  TableStore blocks2(kLedgerBlocksTableId, "b", MakeLedgerBlocksSchema());
  DatabaseLedgerOptions options;
  options.block_size = 10;
  options.clock = [this] { return ++clock_; };
  DatabaseLedger recovered(&txns2, &blocks2, std::move(options));
  ASSERT_TRUE(recovered.RecoverEntry(e1).ok());
  ASSERT_TRUE(recovered.RecoverEntry(e2).ok());  // block 1 -> recloses block 0
  EXPECT_EQ(recovered.closed_block_count(), 1u);
  EXPECT_EQ(recovered.open_block_id(), 1u);

  // The re-closed block 0 hash matches the digest (deterministic closes).
  auto block0 = recovered.FindBlock(0);
  ASSERT_TRUE(block0.ok());
  EXPECT_EQ(block0->ComputeHash(), digest->block_hash);
}

TEST_F(DatabaseLedgerTest, TruncateBelowRemovesOldData) {
  auto ledger_ptr = MakeLedger(2);
  DatabaseLedger& ledger = *ledger_ptr;
  for (uint64_t i = 1; i <= 6; i++)
    ASSERT_TRUE(ledger.Append(MakeEntry(&ledger, i)).ok());
  ASSERT_TRUE(ledger.DrainQueue().ok());
  ASSERT_EQ(ledger.closed_block_count(), 3u);

  auto range = ledger.CollectTxnsBelow(2);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->txn_ids.size(), 4u);
  EXPECT_EQ(range->min_txn_id, 1u);
  EXPECT_EQ(range->max_txn_id, 4u);

  ASSERT_TRUE(ledger.TruncateBelow(2).ok());
  EXPECT_EQ(blocks_.row_count(), 1u);
  EXPECT_TRUE(ledger.FindBlock(0).status().IsNotFound());
  EXPECT_TRUE(ledger.FindBlock(2).ok());
  EXPECT_TRUE(ledger.FindEntry(1).status().IsNotFound());
  EXPECT_TRUE(ledger.FindEntry(5).ok());

  EXPECT_FALSE(ledger.TruncateBelow(99).ok());  // beyond the open block
}

}  // namespace
}  // namespace sqlledger
