// Group-commit torture tests (DESIGN.md §10): multi-threaded committers
// must produce dense, ordered block ordinals; a crash at any sync point of
// a group leaves recovery with a prefix of whole transactions; a failed
// group sync errors every member and latches the sticky WAL error; and the
// group counters/batched-fsync accounting hold up.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "storage/env.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class GroupCommitTest : public TempDirTest {
 protected:
  LedgerDatabaseOptions MakeOptions(const std::string& subdir, Env* env,
                                    CommitOptions commit = {}) {
    LedgerDatabaseOptions options;
    options.data_dir = Path(subdir);
    options.database_id = "groupdb";
    options.block_size = 5;  // small blocks so groups span block boundaries
    options.sync_wal = true;
    options.env = env;
    options.commit = commit;
    options.clock = [this] { return ++clock_; };
    return options;
  }

  // Atomic: called from concurrent committers.
  std::atomic<int64_t> clock_{1000000};
};

// Checks that the persisted ledger entries have contiguous block ids with
// dense 0..n-1 ordinals in every block (no gap, no duplicate).
void ExpectDenseOrdinals(const std::vector<TransactionEntry>& entries,
                         uint64_t block_size) {
  std::map<uint64_t, std::set<uint64_t>> by_block;
  for (const TransactionEntry& e : entries) {
    EXPECT_TRUE(by_block[e.block_id].insert(e.block_ordinal).second)
        << "duplicate slot (" << e.block_id << ", " << e.block_ordinal << ")";
  }
  uint64_t expected_block = by_block.empty() ? 0 : by_block.begin()->first;
  for (const auto& [block_id, ordinals] : by_block) {
    EXPECT_EQ(block_id, expected_block) << "gap in block ids";
    expected_block++;
    uint64_t expected = 0;
    for (uint64_t ord : ordinals) {
      EXPECT_EQ(ord, expected) << "ordinal gap in block " << block_id;
      expected++;
    }
    EXPECT_LE(ordinals.size(), block_size);
  }
}

// ---- (a) dense, ordered ordinals under concurrent committers ----

TEST_F(GroupCommitTest, MultiThreadedCommitsYieldDenseOrdinals) {
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 40;
  CommitOptions commit;
  commit.max_group_size = 16;
  auto db = LedgerDatabase::Open(MakeOptions("db", nullptr, commit));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(
      (*db)->CreateTable("t", SimpleUserSchema(), TableKind::kAppendOnly).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; i++) {
        int64_t id = t * kTxnsPerThread + i;
        Status st = InsertOne(db->get(), "t", id, "p" + std::to_string(id));
        if (!st.ok()) failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Close the open block and persist the queue so AllEntries sees all.
  ASSERT_TRUE((*db)->GenerateDigest().ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());

  std::vector<TransactionEntry> entries =
      (*db)->database_ledger()->AllEntries();
  // kThreads*kTxnsPerThread user txns + the bootstrap system-catalog txn
  // from Open + the CreateTable DDL txn.
  EXPECT_EQ(entries.size(),
            static_cast<size_t>(kThreads * kTxnsPerThread + 2));
  ExpectDenseOrdinals(entries, (*db)->options().block_size);

  DatabaseStats stats = (*db)->GetStats();
  EXPECT_EQ(stats.group_commit_txns,
            static_cast<uint64_t>(kThreads * kTxnsPerThread + 2));
  EXPECT_GE(stats.group_commit_txns, stats.commit_groups);
  EXPECT_GE(stats.largest_commit_group, 1u);

  // All rows visible.
  auto txn = (*db)->Begin("check");
  auto rows = (*db)->Scan(*txn, "t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kThreads * kTxnsPerThread));
  ASSERT_TRUE((*db)->Commit(*txn).ok());
}

// ---- (b) crash at every sync point: whole-transaction prefix ----

TEST_F(GroupCommitTest, CrashAtEverySyncPointLeavesWholeTxnPrefix) {
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 6;
  constexpr int64_t kPairOffset = 1000000;

  bool completed_without_crash = false;
  for (uint64_t crash_point = 1; !completed_without_crash && crash_point < 200;
       crash_point++) {
    std::string subdir = "crash" + std::to_string(crash_point);
    FaultInjectionEnv env;
    std::vector<int64_t> ok_ids;
    std::mutex ok_mu;
    {
      CommitOptions commit;
      commit.max_group_size = 8;
      auto db = LedgerDatabase::Open(MakeOptions(subdir, &env, commit));
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      ASSERT_TRUE((*db)
                      ->CreateTable("t", SimpleUserSchema(),
                                    TableKind::kAppendOnly)
                      .ok());
      // Countdown semantics: the crash_point-th sync from here crashes.
      env.CrashAtSync(static_cast<int>(crash_point));

      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
          for (int i = 0; i < kTxnsPerThread; i++) {
            int64_t id = t * kTxnsPerThread + i;
            auto txn = (*db)->Begin("crash");
            if (!txn.ok()) return;
            // Two rows per transaction: recovery must surface both or
            // neither — a torn transaction would show exactly one.
            Status st = (*db)->Insert(
                *txn, "t", {VB(id), VS("a" + std::to_string(id))});
            if (st.ok())
              st = (*db)->Insert(*txn, "t",
                                 {VB(id + kPairOffset),
                                  VS("b" + std::to_string(id))});
            if (st.ok()) st = (*db)->Commit(*txn);
            if (st.ok()) {
              std::lock_guard<std::mutex> guard(ok_mu);
              ok_ids.push_back(id);
            } else {
              (*db)->Abort(*txn);
            }
          }
        });
      }
      for (auto& th : threads) th.join();
      completed_without_crash = !env.crashed();
    }

    // Reopen with a healthy filesystem; recovery replays the WAL tail.
    auto db = LedgerDatabase::Open(MakeOptions(subdir, nullptr));
    ASSERT_TRUE(db.ok()) << "crash_point=" << crash_point << ": "
                         << db.status().ToString();
    auto txn = (*db)->Begin("check");
    auto rows = (*db)->Scan(*txn, "t");
    ASSERT_TRUE(rows.ok());
    std::set<int64_t> recovered;
    for (const Row& row : *rows) recovered.insert(row[0].AsInt64());
    ASSERT_TRUE((*db)->Commit(*txn).ok());

    // Every transaction that returned OK before the crash is durable.
    for (int64_t id : ok_ids) {
      EXPECT_TRUE(recovered.count(id)) << "crash_point=" << crash_point
                                       << ": lost committed txn " << id;
      EXPECT_TRUE(recovered.count(id + kPairOffset))
          << "crash_point=" << crash_point << ": torn txn " << id;
    }
    // No torn transaction became visible: both rows or neither.
    for (int64_t id : recovered) {
      if (id >= kPairOffset) continue;
      EXPECT_TRUE(recovered.count(id + kPairOffset))
          << "crash_point=" << crash_point << ": torn txn " << id;
    }
    ASSERT_TRUE((*db)->GenerateDigest().ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    ExpectDenseOrdinals((*db)->database_ledger()->AllEntries(),
                        (*db)->options().block_size);
  }
  EXPECT_TRUE(completed_without_crash)
      << "workload never ran crash-free; raise the crash_point cap";
}

// ---- (c) failed group sync fails every member + sticky latch ----

TEST_F(GroupCommitTest, FailedGroupSyncFailsEveryMemberAndLatches) {
  constexpr int kThreads = 4;
  FaultInjectionEnv env;
  CommitOptions commit;
  commit.max_group_size = kThreads;
  commit.max_group_wait_micros = 200000;  // let the group form
  auto db = LedgerDatabase::Open(MakeOptions("db", &env, commit));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(
      (*db)->CreateTable("t", SimpleUserSchema(), TableKind::kAppendOnly).ok());
  uint64_t committed_before = (*db)->GetStats().committed_transactions;

  // The next WAL fsync fails — whichever group issues it. Later groups hit
  // the sticky error, so every concurrent member must come back non-OK.
  env.FailNthSync(1);

  std::atomic<int> commit_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      auto txn = (*db)->Begin("member");
      ASSERT_TRUE(txn.ok());
      Status st = (*db)->Insert(*txn, "t", {VB(t), VS("x")});
      if (st.ok()) st = (*db)->Commit(*txn);
      if (!st.ok()) {
        commit_errors++;
        (*db)->Abort(*txn);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(commit_errors.load(), kThreads);
  EXPECT_EQ((*db)->GetStats().committed_transactions, committed_before);

  // Sticky: the env is healthy again but the WAL stays poisoned. A failed
  // commit leaves the transaction active; abort it explicitly so the
  // checkpoint below can quiesce.
  {
    auto txn = (*db)->Begin("poisoned");
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*db)->Insert(*txn, "t", {VB(100), VS("after-poison")}).ok());
    EXPECT_FALSE((*db)->Commit(*txn).ok());
    (*db)->Abort(*txn);
  }

  // A checkpoint rotates the WAL, clearing the poison; the released slots
  // are re-assigned so ordinals stay dense.
  ASSERT_TRUE((*db)->Checkpoint().ok());
  EXPECT_TRUE(InsertOne(db->get(), "t", 101, "after-reset").ok());
  ASSERT_TRUE((*db)->GenerateDigest().ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());
  ExpectDenseOrdinals((*db)->database_ledger()->AllEntries(),
                      (*db)->options().block_size);
}

// ---- aborted-transaction counter ----

TEST_F(GroupCommitTest, AbortedTransactionsAreCounted) {
  auto db = LedgerDatabase::Open(MakeOptions("db", nullptr));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(
      (*db)->CreateTable("t", SimpleUserSchema(), TableKind::kAppendOnly).ok());
  uint64_t aborted_before = (*db)->GetStats().aborted_transactions;

  for (int i = 0; i < 3; i++) {
    auto txn = (*db)->Begin("aborter");
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*db)->Insert(*txn, "t", {VB(i), VS("gone")}).ok());
    (*db)->Abort(*txn);
  }
  DatabaseStats stats = (*db)->GetStats();
  EXPECT_EQ(stats.aborted_transactions, aborted_before + 3);

  auto txn = (*db)->Begin("check");
  auto rows = (*db)->Scan(*txn, "t");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  ASSERT_TRUE((*db)->Commit(*txn).ok());
}

// ---- group counters + one fsync per group ----

TEST_F(GroupCommitTest, GroupOfTwoSharesOneFsync) {
  FaultInjectionEnv env;
  CommitOptions commit;
  commit.max_group_size = 2;
  // Generous linger: the leader seals as soon as the second member
  // arrives, so the full wait is only ever paid on a pathological
  // scheduling stall.
  commit.max_group_wait_micros = 2000000;
  auto db = LedgerDatabase::Open(MakeOptions("db", &env, commit));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(
      (*db)->CreateTable("t", SimpleUserSchema(), TableKind::kAppendOnly).ok());

  DatabaseStats before = (*db)->GetStats();
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; t++) {
    threads.emplace_back([&, t] {
      EXPECT_TRUE(InsertOne(db->get(), "t", t, "pair").ok());
    });
  }
  for (auto& th : threads) th.join();

  DatabaseStats after = (*db)->GetStats();
  EXPECT_EQ(after.group_commit_txns - before.group_commit_txns, 2u);
  EXPECT_EQ(after.commit_groups - before.commit_groups, 1u);
  EXPECT_EQ(after.largest_commit_group, 2u);
  // One batched fsync for the pair — the whole point of group commit.
  EXPECT_EQ(after.wal_syncs - before.wal_syncs, 1u);
}

}  // namespace
}  // namespace sqlledger
