// Unit tests for util: Status/Result, coding, CRC32C, hex, JSON, Random.

#include <gtest/gtest.h>

#include "util/coding.h"
#include "util/hex.h"
#include "util/json.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"

namespace sqlledger {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::NotFound("row 42");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: row 42");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotSupported("").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Aborted("").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::IntegrityViolation("").code(),
            StatusCode::kIntegrityViolation);
  EXPECT_EQ(Status::PermissionDenied("").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::Busy("").code(), StatusCode::kBusy);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(CodingTest, FixedRoundTrip) {
  std::vector<uint8_t> buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  Decoder dec{Slice(buf)};
  EXPECT_EQ(*dec.GetFixed16(), 0xBEEF);
  EXPECT_EQ(*dec.GetFixed32(), 0xDEADBEEFu);
  EXPECT_EQ(*dec.GetFixed64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(dec.done());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  std::vector<uint64_t> values = {0,       1,          127,        128,
                                  16383,   16384,      UINT32_MAX, 1ULL << 42,
                                  UINT64_MAX};
  std::vector<uint8_t> buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec{Slice(buf)};
  for (uint64_t v : values) {
    auto got = dec.GetVarint64();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(dec.done());
}

TEST(CodingTest, TruncatedInputIsCorruption) {
  std::vector<uint8_t> buf;
  PutFixed64(&buf, 1);
  buf.pop_back();
  Decoder dec{Slice(buf)};
  EXPECT_EQ(dec.GetFixed64().status().code(), StatusCode::kCorruption);
}

TEST(CodingTest, TruncatedVarintIsCorruption) {
  std::vector<uint8_t> buf = {0x80, 0x80};  // continuation bits, no terminator
  Decoder dec{Slice(buf)};
  EXPECT_EQ(dec.GetVarint64().status().code(), StatusCode::kCorruption);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::vector<uint8_t> buf;
  PutLengthPrefixed(&buf, Slice(std::string("hello world")));
  PutLengthPrefixed(&buf, Slice(std::string("")));
  Decoder dec{Slice(buf)};
  EXPECT_EQ(dec.GetLengthPrefixed()->ToString(), "hello world");
  EXPECT_EQ(dec.GetLengthPrefixed()->ToString(), "");
  EXPECT_TRUE(dec.done());
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, DetectsBitFlip) {
  std::string data = "The quick brown fox";
  uint32_t before = Crc32c(Slice(data));
  data[3] ^= 0x01;
  EXPECT_NE(before, Crc32c(Slice(data)));
}

TEST(HexTest, RoundTrip) {
  std::vector<uint8_t> data = {0x00, 0xDE, 0xAD, 0xBE, 0xEF, 0xFF};
  std::string hex = HexEncode(Slice(data));
  EXPECT_EQ(hex, "00deadbeefff");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(HexTest, AcceptsUppercase) {
  auto decoded = HexDecode("DEADBEEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0], 0xDE);
}

TEST(HexTest, RejectsMalformed) {
  EXPECT_FALSE(HexDecode("abc").ok());   // odd length
  EXPECT_FALSE(HexDecode("zz").ok());    // not hex
}

TEST(JsonTest, RoundTripObject) {
  JsonValue doc = JsonValue::Object();
  doc.Set("id", JsonValue::Int(123456789012345));
  doc.Set("name", JsonValue::Str("ledger \"x\"\n"));
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("missing", JsonValue::Null());
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::Double(2.5));
  doc.Set("values", std::move(arr));

  auto parsed = JsonValue::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed->GetInt("id"), 123456789012345);
  EXPECT_EQ(*parsed->GetString("name"), "ledger \"x\"\n");
  EXPECT_TRUE(parsed->Get("ok").bool_value());
  EXPECT_TRUE(parsed->Get("missing").is_null());
  EXPECT_EQ(parsed->Get("values").size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->Get("values")[1].double_value(), 2.5);
}

TEST(JsonTest, Int64RoundTripsExactly) {
  JsonValue doc = JsonValue::Object();
  doc.Set("big", JsonValue::Int(INT64_MAX));
  auto parsed = JsonValue::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed->GetInt("big"), INT64_MAX);
}

TEST(JsonTest, ParsesNested) {
  auto parsed = JsonValue::Parse(
      R"({"a": {"b": [1, 2, {"c": "deep"}]}, "d": -3.5e2})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("a").Get("b")[2].Get("c").string_value(), "deep");
  EXPECT_DOUBLE_EQ(parsed->Get("d").double_value(), -350.0);
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
}

TEST(JsonTest, UnicodeEscapes) {
  auto parsed = JsonValue::Parse(R"({"s": "aAé"})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed->GetString("s"), "aA\xC3\xA9");
}

TEST(JsonTest, FuzzedGarbageNeverCrashes) {
  // The parser sits on the trust boundary (digests/receipts arrive from
  // outside); arbitrary bytes must produce a clean error, never UB.
  Random rng(4242);
  const std::string kChars = "{}[]\",:.0123456789eE+-truefalsn\\u \n\tabc'";
  for (int i = 0; i < 3000; i++) {
    std::string garbage;
    size_t len = rng.Uniform(60);
    for (size_t j = 0; j < len; j++)
      garbage.push_back(kChars[rng.Uniform(kChars.size())]);
    auto parsed = JsonValue::Parse(garbage);
    if (parsed.ok()) {
      // Whatever parsed must re-serialize and re-parse to itself.
      auto reparsed = JsonValue::Parse(parsed->Dump());
      EXPECT_TRUE(reparsed.ok()) << garbage;
    }
  }
}

TEST(JsonTest, MutatedValidDocumentNeverCrashes) {
  JsonValue doc = JsonValue::Object();
  doc.Set("block_id", JsonValue::Int(42));
  doc.Set("hash", JsonValue::Str(std::string(64, 'a')));
  std::string base = doc.Dump();
  Random rng(7);
  for (int i = 0; i < 2000; i++) {
    std::string mutated = base;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    (void)JsonValue::Parse(mutated);  // must not crash; outcome irrelevant
  }
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformRangeStaysInBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; i++) {
    int64_t v = rng.UniformRange(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

TEST(RandomTest, NonUniformStaysInBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; i++) {
    int64_t v = rng.NonUniform(255, 1, 3000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(RandomTest, AlphaStringHasRequestedLength) {
  Random rng(1);
  EXPECT_EQ(rng.AlphaString(0).size(), 0u);
  EXPECT_EQ(rng.AlphaString(17).size(), 17u);
}

}  // namespace
}  // namespace sqlledger
