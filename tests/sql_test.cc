// SQL front-end tests: lexer, parser, and end-to-end execution through
// SqlSession, including the ledger extensions.

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/session.h"
#include "test_util.h"

namespace sqlledger {
namespace {

// ---- Lexer ----

TEST(SqlLexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a_1, 'it''s', 42, 1.5 FROM t -- comment");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // incl. separators and end token
  EXPECT_EQ((*tokens)[0].upper, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "a_1");
  EXPECT_EQ((*tokens)[3].text, "it's");
  EXPECT_EQ((*tokens)[5].int_value, 42);
  EXPECT_DOUBLE_EQ((*tokens)[7].float_value, 1.5);
  EXPECT_EQ((*tokens)[9].text, "t");
  EXPECT_EQ((*tokens)[10].type, TokenType::kEnd);
}

TEST(SqlLexerTest, Operators) {
  auto tokens = Tokenize("<= >= <> != = < > ( ) , ; * -");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "<=");
  EXPECT_EQ((*tokens)[2].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "!=");
}

TEST(SqlLexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @x").ok());
}

// ---- Parser ----

TEST(SqlParserTest, CreateTableWithLedger) {
  auto stmt = ParseSql(
      "CREATE TABLE accounts (name VARCHAR(32) NOT NULL, balance BIGINT, "
      "PRIMARY KEY (name)) WITH (LEDGER = ON)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_TRUE(stmt->create_table.has_value());
  const CreateTableStmt& create = *stmt->create_table;
  EXPECT_EQ(create.table, "accounts");
  ASSERT_EQ(create.columns.size(), 2u);
  EXPECT_EQ(create.columns[0].max_length, 32u);
  EXPECT_FALSE(create.columns[0].nullable);
  EXPECT_TRUE(create.columns[1].nullable);
  EXPECT_EQ(create.primary_key, (std::vector<std::string>{"name"}));
  EXPECT_EQ(create.kind, TableKind::kUpdateable);
}

TEST(SqlParserTest, CreateAppendOnly) {
  auto stmt = ParseSql(
      "CREATE TABLE log (id BIGINT NOT NULL, PRIMARY KEY (id)) "
      "WITH (LEDGER = ON, APPEND_ONLY = ON)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->create_table->kind, TableKind::kAppendOnly);
}

TEST(SqlParserTest, SelectFull) {
  auto stmt = ParseSql(
      "SELECT name, balance FROM accounts WHERE balance >= 100 AND name <> "
      "'Joe' ORDER BY balance DESC LIMIT 5;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& select = *stmt->select;
  EXPECT_EQ(select.columns.size(), 2u);
  ASSERT_EQ(select.where.size(), 2u);
  EXPECT_EQ(select.where[0].op, SqlPredicate::Op::kGe);
  EXPECT_EQ(select.where[1].op, SqlPredicate::Op::kNe);
  EXPECT_EQ(*select.order_by, "balance");
  EXPECT_TRUE(select.order_desc);
  EXPECT_EQ(*select.limit, 5);
}

TEST(SqlParserTest, SelectLedgerView) {
  auto stmt = ParseSql("SELECT * FROM LEDGER_VIEW(accounts)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select->from_ledger_view);
  EXPECT_EQ(stmt->select->table, "accounts");
}

TEST(SqlParserTest, InsertMultiRow) {
  auto stmt = ParseSql(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (-2, NULL), (3, TRUE)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->insert->rows.size(), 3u);
  EXPECT_EQ(stmt->insert->rows[1][0].AsInt64(), -2);
  EXPECT_TRUE(stmt->insert->rows[1][1].is_null());
  EXPECT_TRUE(stmt->insert->rows[2][1].bool_value());
}

TEST(SqlParserTest, UpdateDeleteTxn) {
  EXPECT_TRUE(ParseSql("UPDATE t SET a = 1, b = 'x' WHERE id = 3").ok());
  EXPECT_TRUE(ParseSql("DELETE FROM t WHERE id > 10").ok());
  EXPECT_TRUE(ParseSql("BEGIN").ok());
  EXPECT_TRUE(ParseSql("COMMIT").ok());
  EXPECT_TRUE(ParseSql("ROLLBACK").ok());
  EXPECT_TRUE(ParseSql("SAVEPOINT sp1").ok());
  auto stmt = ParseSql("ROLLBACK TO SAVEPOINT sp1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->txn->kind, TxnStmt::Kind::kRollbackTo);
  EXPECT_EQ(stmt->txn->savepoint, "sp1");
}

TEST(SqlParserTest, LedgerStatements) {
  auto digest = ParseSql("GENERATE DIGEST");
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest->ledger->kind, LedgerStmt::Kind::kGenerateDigest);
  auto verify = ParseSql("VERIFY LEDGER");
  ASSERT_TRUE(verify.ok());
  EXPECT_EQ(verify->ledger->kind, LedgerStmt::Kind::kVerifyLedger);
}

TEST(SqlParserTest, AlterForms) {
  EXPECT_TRUE(ParseSql("ALTER TABLE t ADD COLUMN c VARCHAR(10)").ok());
  EXPECT_TRUE(ParseSql("ALTER TABLE t DROP COLUMN c").ok());
  auto stmt = ParseSql("ALTER TABLE t ALTER COLUMN c BIGINT");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->alter_table->action,
            AlterTableStmt::Action::kAlterColumnType);
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELEKT * FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES (1) garbage").ok());
  EXPECT_FALSE(ParseSql("CREATE TABLE t (a INT, PRIMARY KEY (b)").ok());
  EXPECT_FALSE(ParseSql("").ok());
  // Semantic errors (unknown PK column) surface at execution time.
  auto db = OpenTestDb(16);
  SqlSession session(db.get());
  EXPECT_FALSE(
      session.Execute("CREATE TABLE t (a INT, PRIMARY KEY (b))").ok());
}

// ---- Execution ----

class SqlSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenTestDb(/*block_size=*/16);
    session_ = std::make_unique<SqlSession>(db_.get(), "tester");
    Must(
        "CREATE TABLE accounts (name VARCHAR(32) NOT NULL, balance BIGINT "
        "NOT NULL, PRIMARY KEY (name)) WITH (LEDGER = ON)");
  }

  SqlResultSet Must(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *result : SqlResultSet{};
  }

  std::unique_ptr<LedgerDatabase> db_;
  std::unique_ptr<SqlSession> session_;
};

TEST_F(SqlSessionTest, InsertSelectRoundTrip) {
  Must("INSERT INTO accounts VALUES ('Nick', 50), ('John', 500)");
  SqlResultSet result = Must("SELECT * FROM accounts ORDER BY name");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.column_names[0], "name");
  EXPECT_EQ(result.rows[0][0].string_value(), "John");
  EXPECT_EQ(result.rows[1][1].AsInt64(), 50);
}

TEST_F(SqlSessionTest, WhereOrderLimit) {
  Must("INSERT INTO accounts VALUES ('a', 10), ('b', 20), ('c', 30), "
       "('d', 40)");
  SqlResultSet result = Must(
      "SELECT name FROM accounts WHERE balance > 10 AND balance <= 40 "
      "ORDER BY balance DESC LIMIT 2");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][0].string_value(), "d");
  EXPECT_EQ(result.rows[1][0].string_value(), "c");
}

TEST_F(SqlSessionTest, UpdateAndDeleteWithPredicates) {
  Must("INSERT INTO accounts VALUES ('a', 10), ('b', 20), ('c', 30)");
  SqlResultSet updated =
      Must("UPDATE accounts SET balance = 99 WHERE balance >= 20");
  EXPECT_EQ(updated.affected_rows, 2);
  SqlResultSet deleted = Must("DELETE FROM accounts WHERE name = 'a'");
  EXPECT_EQ(deleted.affected_rows, 1);
  SqlResultSet rest = Must("SELECT * FROM accounts ORDER BY name");
  ASSERT_EQ(rest.rows.size(), 2u);
  EXPECT_EQ(rest.rows[0][1].AsInt64(), 99);
}

TEST_F(SqlSessionTest, ExplicitTransactionWithSavepoint) {
  Must("BEGIN");
  EXPECT_TRUE(session_->in_transaction());
  Must("INSERT INTO accounts VALUES ('kept', 1)");
  Must("SAVEPOINT sp");
  Must("INSERT INTO accounts VALUES ('discarded', 2)");
  Must("ROLLBACK TO SAVEPOINT sp");
  Must("COMMIT");
  EXPECT_FALSE(session_->in_transaction());
  SqlResultSet result = Must("SELECT * FROM accounts");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].string_value(), "kept");
}

TEST_F(SqlSessionTest, RollbackDiscardsEverything) {
  Must("BEGIN");
  Must("INSERT INTO accounts VALUES ('ghost', 1)");
  Must("ROLLBACK");
  EXPECT_EQ(Must("SELECT * FROM accounts").rows.size(), 0u);
}

TEST_F(SqlSessionTest, LedgerViewFromSql) {
  Must("INSERT INTO accounts VALUES ('Nick', 50)");
  Must("UPDATE accounts SET balance = 100 WHERE name = 'Nick'");
  SqlResultSet view = Must("SELECT * FROM LEDGER_VIEW(accounts)");
  ASSERT_EQ(view.rows.size(), 3u);  // INSERT, DELETE(50), INSERT(100)
  EXPECT_EQ(view.column_names.back(), "transaction_id");
  // Filter the view like any relation.
  SqlResultSet deletes = Must(
      "SELECT name, balance FROM LEDGER_VIEW(accounts) WHERE operation = "
      "'DELETE'");
  ASSERT_EQ(deletes.rows.size(), 1u);
  EXPECT_EQ(deletes.rows[0][1].AsInt64(), 50);
}

TEST_F(SqlSessionTest, GenerateDigestAndVerify) {
  Must("INSERT INTO accounts VALUES ('Nick', 50)");
  SqlResultSet digest = Must("GENERATE DIGEST");
  EXPECT_NE(digest.message.find("block_hash"), std::string::npos);
  SqlResultSet verify = Must("VERIFY LEDGER");
  EXPECT_NE(verify.message.find("VERIFICATION PASSED"), std::string::npos);
}

TEST_F(SqlSessionTest, VerifyFailsAfterTampering) {
  Must("INSERT INTO accounts VALUES ('Nick', 50)");
  Must("GENERATE DIGEST");
  TableStore* store = db_->GetStoreForTesting("accounts");
  Row* row = store->mutable_clustered()->MutableGet({Value::Varchar("Nick")});
  (*row)[1] = Value::BigInt(999);
  auto result = session_->Execute("VERIFY LEDGER");
  EXPECT_TRUE(result.status().IsIntegrityViolation());
}

TEST_F(SqlSessionTest, SchemaChangesFromSql) {
  Must("INSERT INTO accounts VALUES ('Nick', 50)");
  Must("ALTER TABLE accounts ADD COLUMN email VARCHAR(64)");
  Must("UPDATE accounts SET email = 'n@x.com' WHERE name = 'Nick'");
  SqlResultSet result = Must("SELECT email FROM accounts");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].string_value(), "n@x.com");
  Must("ALTER TABLE accounts DROP COLUMN email");
  EXPECT_FALSE(session_->Execute("SELECT email FROM accounts").ok());
  SqlResultSet verify = Must("VERIFY LEDGER");
  EXPECT_NE(verify.message.find("PASSED"), std::string::npos);
}

TEST_F(SqlSessionTest, CreateIndexAndDropTable) {
  Must("CREATE INDEX by_balance ON accounts (balance)");
  Must("INSERT INTO accounts VALUES ('a', 1)");
  Must("DROP TABLE accounts");
  EXPECT_FALSE(session_->Execute("SELECT * FROM accounts").ok());
}

TEST_F(SqlSessionTest, TypeCoercionAndErrors) {
  // BIGINT literal into BIGINT column, string into VARCHAR: fine. Overflow
  // and type mismatches report cleanly.
  Must("CREATE TABLE nums (id INT NOT NULL, small SMALLINT, PRIMARY KEY "
       "(id)) WITH (LEDGER = ON)");
  Must("INSERT INTO nums VALUES (1, 30000)");
  EXPECT_FALSE(session_->Execute("INSERT INTO nums VALUES (2, 40000)").ok());
  EXPECT_FALSE(
      session_->Execute("INSERT INTO nums VALUES ('x', 1)").ok());
  EXPECT_FALSE(session_->Execute("SELECT nope FROM nums").ok());
  EXPECT_FALSE(session_->Execute("SELECT * FROM missing").ok());
}

TEST_F(SqlSessionTest, AppendOnlyFromSql) {
  Must("CREATE TABLE audit (id BIGINT NOT NULL, note VARCHAR(64), PRIMARY "
       "KEY (id)) WITH (LEDGER = ON, APPEND_ONLY = ON)");
  Must("INSERT INTO audit VALUES (1, 'created')");
  EXPECT_FALSE(
      session_->Execute("UPDATE audit SET note = 'edited' WHERE id = 1").ok());
  EXPECT_FALSE(session_->Execute("DELETE FROM audit WHERE id = 1").ok());
}

TEST_F(SqlSessionTest, Aggregates) {
  Must("INSERT INTO accounts VALUES ('a', 10), ('b', 20), ('c', 30), "
       "('d', 40)");
  SqlResultSet result = Must(
      "SELECT COUNT(*), SUM(balance), MIN(balance), MAX(balance), "
      "AVG(balance) FROM accounts");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.column_names[0], "count(*)");
  EXPECT_EQ(result.rows[0][0].AsInt64(), 4);
  EXPECT_EQ(result.rows[0][1].AsInt64(), 100);
  EXPECT_EQ(result.rows[0][2].AsInt64(), 10);
  EXPECT_EQ(result.rows[0][3].AsInt64(), 40);
  EXPECT_DOUBLE_EQ(result.rows[0][4].double_value(), 25.0);

  // Aggregates respect WHERE.
  result = Must("SELECT COUNT(*) FROM accounts WHERE balance > 15");
  EXPECT_EQ(result.rows[0][0].AsInt64(), 3);

  // SUM over non-numeric fails cleanly.
  EXPECT_FALSE(session_->Execute("SELECT SUM(name) FROM accounts").ok());
}

TEST_F(SqlSessionTest, AggregatesWithNulls) {
  Must("ALTER TABLE accounts ADD COLUMN rating BIGINT");
  Must("INSERT INTO accounts VALUES ('a', 1, 5), ('b', 2, NULL)");
  SqlResultSet result =
      Must("SELECT COUNT(rating), SUM(rating) FROM accounts");
  EXPECT_EQ(result.rows[0][0].AsInt64(), 1);  // NULLs not counted
  EXPECT_EQ(result.rows[0][1].AsInt64(), 5);

  // MIN over an all-NULL set is NULL.
  Must("DELETE FROM accounts WHERE name = 'a'");
  result = Must("SELECT MIN(rating) FROM accounts");
  EXPECT_TRUE(result.rows[0][0].is_null());
}

TEST_F(SqlSessionTest, GroupBy) {
  Must("CREATE TABLE orders (id BIGINT NOT NULL, region VARCHAR(8) NOT "
       "NULL, amount BIGINT NOT NULL, PRIMARY KEY (id)) WITH (LEDGER = ON)");
  Must("INSERT INTO orders VALUES (1, 'east', 10), (2, 'west', 20), "
       "(3, 'east', 30), (4, 'west', 40), (5, 'east', 50)");
  SqlResultSet result = Must(
      "SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.column_names[0], "region");
  EXPECT_EQ(result.rows[0][0].string_value(), "east");
  EXPECT_EQ(result.rows[0][1].AsInt64(), 3);
  EXPECT_EQ(result.rows[0][2].AsInt64(), 90);
  EXPECT_EQ(result.rows[1][0].string_value(), "west");
  EXPECT_EQ(result.rows[1][2].AsInt64(), 60);

  // GROUP BY respects WHERE.
  result = Must(
      "SELECT region, COUNT(*) FROM orders WHERE amount > 15 GROUP BY "
      "region");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][1].AsInt64(), 2);  // east: 30, 50

  // Malformed GROUP BY forms are rejected.
  EXPECT_FALSE(
      session_->Execute("SELECT region FROM orders GROUP BY region").ok());
  EXPECT_FALSE(session_->Execute(
                       "SELECT amount, COUNT(*) FROM orders GROUP BY region")
                   .ok());
  EXPECT_FALSE(
      session_->Execute("SELECT region, amount FROM orders GROUP BY region")
          .ok());
}

TEST_F(SqlSessionTest, IsNullPredicates) {
  Must("ALTER TABLE accounts ADD COLUMN email VARCHAR(32)");
  Must("INSERT INTO accounts VALUES ('a', 1, 'a@x'), ('b', 2, NULL)");
  SqlResultSet with_mail =
      Must("SELECT name FROM accounts WHERE email IS NOT NULL");
  ASSERT_EQ(with_mail.rows.size(), 1u);
  EXPECT_EQ(with_mail.rows[0][0].string_value(), "a");
  SqlResultSet without =
      Must("SELECT name FROM accounts WHERE email IS NULL");
  ASSERT_EQ(without.rows.size(), 1u);
  EXPECT_EQ(without.rows[0][0].string_value(), "b");
}

TEST_F(SqlSessionTest, PointLookupPath) {
  Must("INSERT INTO accounts VALUES ('a', 10), ('b', 20)");
  // Full-PK equality uses the point path; results must match a scan.
  SqlResultSet point = Must("SELECT balance FROM accounts WHERE name = 'b'");
  ASSERT_EQ(point.rows.size(), 1u);
  EXPECT_EQ(point.rows[0][0].AsInt64(), 20);
  // Point path + extra predicate that filters the row out.
  SqlResultSet none =
      Must("SELECT * FROM accounts WHERE name = 'b' AND balance < 5");
  EXPECT_EQ(none.rows.size(), 0u);
  // Missing key: empty, not an error.
  EXPECT_EQ(Must("SELECT * FROM accounts WHERE name = 'zz'").rows.size(), 0u);
}

TEST_F(SqlSessionTest, ResultSetFormatting) {
  Must("INSERT INTO accounts VALUES ('Nick', 50)");
  std::string text = Must("SELECT * FROM accounts").ToString();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("'Nick'"), std::string::npos);
  EXPECT_NE(text.find("(1 rows)"), std::string::npos);
}

}  // namespace
}  // namespace sqlledger
