// B+-tree tests, including randomized property tests against std::map as
// the model.

#include <gtest/gtest.h>

#include <map>

#include "storage/btree.h"
#include "util/random.h"

namespace sqlledger {
namespace {

KeyTuple K(int64_t v) { return {Value::BigInt(v)}; }
Row V(int64_t v) { return {Value::BigInt(v), Value::Varchar("v")}; }

TEST(BTreeTest, EmptyTree) {
  BTree tree(8);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Get(K(1)), nullptr);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, InsertGetDelete) {
  BTree tree(8);
  ASSERT_TRUE(tree.Insert(K(1), V(10)).ok());
  ASSERT_TRUE(tree.Insert(K(2), V(20)).ok());
  EXPECT_EQ(tree.size(), 2u);
  ASSERT_NE(tree.Get(K(1)), nullptr);
  EXPECT_EQ((*tree.Get(K(2)))[0].AsInt64(), 20);
  EXPECT_TRUE(tree.Delete(K(1)).ok());
  EXPECT_EQ(tree.Get(K(1)), nullptr);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, DuplicateInsertFails) {
  BTree tree(8);
  ASSERT_TRUE(tree.Insert(K(1), V(10)).ok());
  EXPECT_EQ(tree.Insert(K(1), V(11)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ((*tree.Get(K(1)))[0].AsInt64(), 10);
}

TEST(BTreeTest, UpsertOverwrites) {
  BTree tree(8);
  tree.Upsert(K(1), V(10));
  tree.Upsert(K(1), V(11));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ((*tree.Get(K(1)))[0].AsInt64(), 11);
}

TEST(BTreeTest, UpdateRequiresExisting) {
  BTree tree(8);
  EXPECT_TRUE(tree.Update(K(1), V(10)).IsNotFound());
  tree.Upsert(K(1), V(10));
  EXPECT_TRUE(tree.Update(K(1), V(99)).ok());
  EXPECT_EQ((*tree.Get(K(1)))[0].AsInt64(), 99);
}

TEST(BTreeTest, DeleteMissingFails) {
  BTree tree(8);
  EXPECT_TRUE(tree.Delete(K(1)).IsNotFound());
}

TEST(BTreeTest, OrderedIterationAcrossSplits) {
  BTree tree(4);  // small fanout forces deep trees
  for (int64_t i = 999; i >= 0; i--) ASSERT_TRUE(tree.Insert(K(i), V(i)).ok());
  int64_t expected = 0;
  for (BTree::Iterator it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key()[0].AsInt64(), expected);
    EXPECT_EQ(it.value()[0].AsInt64(), expected);
    expected++;
  }
  EXPECT_EQ(expected, 1000);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, SeekFindsFirstAtOrAfter) {
  BTree tree(4);
  for (int64_t i = 0; i < 100; i += 10) ASSERT_TRUE(tree.Insert(K(i), V(i)).ok());
  BTree::Iterator it = tree.Seek(K(35));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt64(), 40);
  it = tree.Seek(K(40));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt64(), 40);
  it = tree.Seek(K(91));
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeTest, MutableGetEditsInPlace) {
  BTree tree(4);
  tree.Upsert(K(1), V(10));
  Row* row = tree.MutableGet(K(1));
  ASSERT_NE(row, nullptr);
  row->push_back(Value::Int(7));
  EXPECT_EQ(tree.Get(K(1))->size(), 3u);
  EXPECT_EQ(tree.MutableGet(K(99)), nullptr);
}

TEST(BTreeTest, CompositeKeysOrderLexicographically) {
  BTree tree(4);
  for (int64_t a = 0; a < 5; a++) {
    for (int64_t b = 0; b < 5; b++) {
      ASSERT_TRUE(
          tree.Insert({Value::BigInt(a), Value::BigInt(b)}, V(a * 10 + b))
              .ok());
    }
  }
  BTree::Iterator it = tree.Seek({Value::BigInt(2)});
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt64(), 2);
  EXPECT_EQ(it.key()[1].AsInt64(), 0);
}

TEST(BTreeTest, DrainToEmptyAndRefill) {
  BTree tree(4);
  for (int64_t i = 0; i < 200; i++) ASSERT_TRUE(tree.Insert(K(i), V(i)).ok());
  for (int64_t i = 0; i < 200; i++) ASSERT_TRUE(tree.Delete(K(i)).ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (int64_t i = 0; i < 50; i++) ASSERT_TRUE(tree.Insert(K(i), V(i)).ok());
  EXPECT_EQ(tree.size(), 50u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

// Property test: random interleaved operations, compared against std::map.
class BTreeFuzz : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BTreeFuzz, MatchesModel) {
  auto [seed, fanout] = GetParam();
  Random rng(static_cast<uint64_t>(seed));
  BTree tree(static_cast<size_t>(fanout));
  std::map<int64_t, int64_t> model;

  for (int op = 0; op < 5000; op++) {
    int64_t key = rng.UniformRange(0, 400);
    uint64_t action = rng.Uniform(10);
    if (action < 5) {
      Status st = tree.Insert(K(key), V(key * 2));
      if (model.count(key)) {
        EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
      } else {
        EXPECT_TRUE(st.ok());
        model[key] = key * 2;
      }
    } else if (action < 8) {
      Status st = tree.Delete(K(key));
      if (model.count(key)) {
        EXPECT_TRUE(st.ok());
        model.erase(key);
      } else {
        EXPECT_TRUE(st.IsNotFound());
      }
    } else {
      const Row* row = tree.Get(K(key));
      if (model.count(key)) {
        ASSERT_NE(row, nullptr);
        EXPECT_EQ((*row)[0].AsInt64(), model[key]);
      } else {
        EXPECT_EQ(row, nullptr);
      }
    }
  }

  EXPECT_EQ(tree.size(), model.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  auto mit = model.begin();
  for (BTree::Iterator it = tree.Begin(); it.Valid(); it.Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it.key()[0].AsInt64(), mit->first);
  }
  EXPECT_EQ(mit, model.end());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFanouts, BTreeFuzz,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(4, 8, 64)));

}  // namespace
}  // namespace sqlledger
