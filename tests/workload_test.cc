// Workload generator tests: TPC-C-like and TPC-E-like setups run, maintain
// invariants, and the whole database verifies afterwards; the consensus
// baseline simulation obeys its configured envelope.

#include <gtest/gtest.h>

#include "ledger/verifier.h"
#include "test_util.h"
#include "workload/consensus_baseline.h"
#include "workload/tpcc.h"
#include "workload/tpce.h"

namespace sqlledger {
namespace {

TEST(TpccTest, SetupCreatesNineTables) {
  auto db = OpenTestDb(/*block_size=*/1000);
  TpccConfig config;
  config.warehouses = 1;
  TpccWorkload tpcc(db.get(), config);
  ASSERT_TRUE(tpcc.Setup().ok());

  int user_tables = 0, ledger_tables = 0;
  for (CatalogEntry* entry : db->AllTables()) {
    if (entry->is_system) continue;
    user_tables++;
    if (entry->kind != TableKind::kRegular) ledger_tables++;
  }
  EXPECT_EQ(user_tables, 9);
  EXPECT_EQ(ledger_tables, 4);  // the four order-related tables (paper §4.1.1)
}

TEST(TpccTest, TransactionsRunAndVerify) {
  auto db = OpenTestDb(/*block_size=*/1000);
  TpccConfig config;
  TpccWorkload tpcc(db.get(), config);
  ASSERT_TRUE(tpcc.Setup().ok());

  Random rng(1);
  TpccStats stats;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(tpcc.RunTransaction(&rng, &stats).ok());
  }
  EXPECT_GT(stats.committed, 150u);
  EXPECT_GT(stats.new_orders, 0u);
  EXPECT_GT(stats.payments, 0u);

  auto digest = db->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST(TpccTest, DeliveryConsumesNewOrders) {
  auto db = OpenTestDb(/*block_size=*/1000);
  TpccWorkload tpcc(db.get(), TpccConfig{});
  ASSERT_TRUE(tpcc.Setup().ok());
  Random rng(2);
  for (int i = 0; i < 20; i++) ASSERT_TRUE(tpcc.NewOrder(&rng).ok());
  auto ref = db->GetTableRef("new_order");
  ASSERT_TRUE(ref.ok());
  size_t before = ref->main->row_count();
  ASSERT_TRUE(tpcc.Delivery(&rng).ok());
  EXPECT_LT(ref->main->row_count(), before);
  // Deleted new_order rows are preserved in the history table.
  EXPECT_GT(ref->history->row_count(), 0u);
}

TEST(TpccTest, BaselineModeCreatesNoLedgerTables) {
  auto db = OpenTestDb(1000, /*enable_ledger=*/false);
  TpccConfig config;
  TpccWorkload tpcc(db.get(), config);
  ASSERT_TRUE(tpcc.Setup().ok());
  for (CatalogEntry* entry : db->AllTables()) {
    EXPECT_EQ(entry->kind, TableKind::kRegular);
  }
  Random rng(3);
  TpccStats stats;
  for (int i = 0; i < 50; i++)
    ASSERT_TRUE(tpcc.RunTransaction(&rng, &stats).ok());
  EXPECT_GT(stats.committed, 30u);
}

TEST(TpceTest, SetupCreates33LedgerTables) {
  auto db = OpenTestDb(/*block_size=*/1000);
  TpceWorkload tpce(db.get(), TpceConfig{});
  ASSERT_TRUE(tpce.Setup().ok());

  int user_tables = 0, ledger_tables = 0;
  for (CatalogEntry* entry : db->AllTables()) {
    if (entry->is_system) continue;
    user_tables++;
    if (entry->kind == TableKind::kUpdateable) ledger_tables++;
  }
  EXPECT_EQ(user_tables, TpceWorkload::kTableCount);
  EXPECT_EQ(ledger_tables, TpceWorkload::kTableCount);  // all 33 (paper)
}

TEST(TpceTest, TransactionsRunAndVerify) {
  auto db = OpenTestDb(/*block_size=*/1000);
  TpceWorkload tpce(db.get(), TpceConfig{});
  ASSERT_TRUE(tpce.Setup().ok());

  Random rng(4);
  TpceStats stats;
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(tpce.RunTransaction(&rng, &stats).ok());
  }
  EXPECT_GT(stats.committed, 250u);
  EXPECT_GT(stats.reads, stats.trade_orders);  // read-heavy mix

  auto digest = db->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST(TpceTest, TradeLifecycleUpdatesHoldings) {
  auto db = OpenTestDb(/*block_size=*/1000);
  TpceWorkload tpce(db.get(), TpceConfig{});
  ASSERT_TRUE(tpce.Setup().ok());
  Random rng(5);
  for (int i = 0; i < 10; i++) ASSERT_TRUE(tpce.TradeOrder(&rng).ok());
  for (int i = 0; i < 30; i++) ASSERT_TRUE(tpce.TradeResult(&rng).ok());
  auto ref = db->GetTableRef("holding");
  ASSERT_TRUE(ref.ok());
  EXPECT_GT(ref->main->row_count(), 0u);
}

TEST(ConsensusBaselineTest, LatencyDominatedByBlockInterval) {
  ConsensusConfig config;
  config.time_scale = 100;  // run fast, report unscaled numbers
  config.block_size = 8;
  SimulatedConsensusLedger ledger(config);
  uint64_t latency = ledger.Submit(Slice(std::string("txn")));
  // End-to-end latency must include endorsement + half interval; with the
  // defaults that is in the 100s of milliseconds (paper §4.1.1).
  EXPECT_GT(latency, 250000u);  // > 250 ms simulated
  EXPECT_LT(latency, 2000000u);
  EXPECT_EQ(ledger.stats().committed, 1u);
}

TEST(ConsensusBaselineTest, ThroughputCapMatchesParameters) {
  ConsensusConfig config;
  EXPECT_DOUBLE_EQ(SimulatedConsensusLedger(config).TheoreticalMaxThroughput(),
                   1000.0);  // 500 txns / 0.5 s
}

TEST(ConsensusBaselineTest, FullBlockCutsEarly) {
  ConsensusConfig config;
  config.time_scale = 50;
  config.block_size = 4;
  SimulatedConsensusLedger ledger(config);
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; i++) {
    clients.emplace_back(
        [&ledger] { ledger.Submit(Slice(std::string("t"))); });
  }
  for (auto& c : clients) c.join();
  ConsensusStats stats = ledger.stats();
  EXPECT_EQ(stats.committed, 8u);
  EXPECT_GE(stats.blocks, 2u);  // 8 txns, blocks of 4
}

}  // namespace
}  // namespace sqlledger
