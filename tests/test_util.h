// Shared test helpers: temp directories and canned databases/schemas.

#ifndef SQLLEDGER_TESTS_TEST_UTIL_H_
#define SQLLEDGER_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "ledger/ledger_database.h"

namespace sqlledger {

/// Base seed for every randomized test. Defaults to 1 so CI is reproducible;
/// set the SQLLEDGER_TEST_SEED environment variable to replay a nightly
/// failure or to explore a different deterministic region. Tests that draw
/// randomness must mix this in and print it on failure, so the one-line
/// reproduction is always `SQLLEDGER_TEST_SEED=<n> ./the_test`.
inline uint64_t TestSeed() {
  static const uint64_t seed = [] {
    const char* env = std::getenv("SQLLEDGER_TEST_SEED");
    if (env != nullptr && *env != '\0')
      return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
    return static_cast<uint64_t>(1);
  }();
  return seed;
}

/// Derives the per-case seed from the suite-wide base and a case index.
/// SplitMix64-style mixing so adjacent indices land far apart.
inline uint64_t TestCaseSeed(uint64_t index) {
  uint64_t z = TestSeed() * 0x9E3779B97F4A7C15ULL + index;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// gtest fixture providing a per-test temp directory.
class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("sqlledger_" + std::to_string(::getpid()) + "_" +
            std::string(info->test_suite_name()) + "_" +
            std::string(info->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    // Digest blobs are written read-only; restore write permission first.
    for (auto it = std::filesystem::recursive_directory_iterator(
             dir_, std::filesystem::directory_options::skip_permission_denied,
             ec);
         it != std::filesystem::recursive_directory_iterator(); ++it) {
      std::filesystem::permissions(it->path(),
                                   std::filesystem::perms::owner_all,
                                   std::filesystem::perm_options::add, ec);
    }
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

/// A two-column user schema: (id BIGINT PK, payload VARCHAR).
inline Schema SimpleUserSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, true);
  s.SetPrimaryKey({0});
  return s;
}

/// The Figure 2 schema: (name VARCHAR PK, balance BIGINT).
inline Schema AccountSchema() {
  Schema s;
  s.AddColumn("name", DataType::kVarchar, false, 32);
  s.AddColumn("balance", DataType::kBigInt, false);
  s.SetPrimaryKey({0});
  return s;
}

/// Opens an ephemeral (in-memory) database with a deterministic clock and a
/// small block size suited to tests.
inline std::unique_ptr<LedgerDatabase> OpenTestDb(uint64_t block_size = 4,
                                                  bool enable_ledger = true) {
  LedgerDatabaseOptions options;
  options.enable_ledger = enable_ledger;
  options.block_size = block_size;
  options.database_id = "testdb";
  // Atomic: the clock is called from committers, digest uploaders and
  // verifier threads concurrently.
  static std::atomic<int64_t> fake_clock{1000000};
  options.clock = [] { return ++fake_clock; };
  auto db = LedgerDatabase::Open(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

/// Runs one committed transaction inserting (id, payload) into `table`.
inline Status InsertOne(LedgerDatabase* db, const std::string& table,
                        int64_t id, const std::string& payload,
                        uint64_t* txn_id_out = nullptr) {
  auto txn = db->Begin("tester");
  if (!txn.ok()) return txn.status();
  if (txn_id_out != nullptr) *txn_id_out = (*txn)->id();
  Status st =
      db->Insert(*txn, table, {Value::BigInt(id), Value::Varchar(payload)});
  if (!st.ok()) {
    db->Abort(*txn);
    return st;
  }
  return db->Commit(*txn);
}

}  // namespace sqlledger

#endif  // SQLLEDGER_TESTS_TEST_UTIL_H_
