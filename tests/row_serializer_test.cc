// Canonical row serialization tests, including the paper's metadata-attack
// examples: the §3.2 INT/SMALLINT type swap and the §3.5.1 NULL-ordinal
// attack must both change the hash.

#include <gtest/gtest.h>

#include "ledger/row_serializer.h"

namespace sqlledger {
namespace {

Schema TwoIntSchema(DataType t1, DataType t2) {
  Schema s;
  s.AddColumn("Column1", t1, true);
  s.AddColumn("Column2", t2, true);
  s.SetPrimaryKey({0});
  return s;
}

TEST(RowSerializerTest, Deterministic) {
  Schema s = TwoIntSchema(DataType::kInt, DataType::kSmallInt);
  Row row{Value::Int(0x12), Value::SmallInt(0x34)};
  auto a = SerializeRowVersion(s, row, RowOp::kInsert, 100, 7, 3);
  auto b = SerializeRowVersion(s, row, RowOp::kInsert, 100, 7, 3);
  EXPECT_EQ(a, b);
}

// The paper's §3.2 example: declaring Column1 SMALLINT and Column2 INT must
// produce a different serialization even though a metadata-free format
// would emit identical value bytes.
TEST(RowSerializerTest, TypeSwapAttackChangesHash) {
  Schema honest = TwoIntSchema(DataType::kInt, DataType::kSmallInt);
  Row honest_row{Value::Int(0x12), Value::SmallInt(0x34)};

  Schema tampered = TwoIntSchema(DataType::kSmallInt, DataType::kInt);
  Row tampered_row{Value::SmallInt(0x12), Value::Int(0x34)};

  EXPECT_NE(
      RowVersionLeafHash(honest, honest_row, RowOp::kInsert, 100, 7, 3),
      RowVersionLeafHash(tampered, tampered_row, RowOp::kInsert, 100, 7, 3));
}

// §3.5.1: moving a value to a different column (NULL-map manipulation) must
// change the hash because non-NULL column ids are explicit.
TEST(RowSerializerTest, NullOrdinalAttackChangesHash) {
  Schema s = TwoIntSchema(DataType::kInt, DataType::kInt);
  Row row_a{Value::Int(5), Value::Null(DataType::kInt)};
  Row row_b{Value::Null(DataType::kInt), Value::Int(5)};
  EXPECT_NE(RowVersionLeafHash(s, row_a, RowOp::kInsert, 100, 7, 3),
            RowVersionLeafHash(s, row_b, RowOp::kInsert, 100, 7, 3));
}

TEST(RowSerializerTest, NullsDoNotContribute) {
  // Adding a trailing NULL column must not change the serialization —
  // the property AddColumn (§3.5.1) depends on.
  Schema before = TwoIntSchema(DataType::kInt, DataType::kInt);
  Row row_before{Value::Int(1), Value::Int(2)};
  auto bytes_before =
      SerializeRowVersion(before, row_before, RowOp::kInsert, 100, 7, 3);

  Schema after = before;
  after.AddColumn("new_col", DataType::kVarchar, true);
  Row row_after{Value::Int(1), Value::Int(2), Value::Null(DataType::kVarchar)};
  auto bytes_after =
      SerializeRowVersion(after, row_after, RowOp::kInsert, 100, 7, 3);

  EXPECT_EQ(bytes_before, bytes_after);
}

TEST(RowSerializerTest, OpTypeDistinguishesLeaves) {
  Schema s = TwoIntSchema(DataType::kInt, DataType::kInt);
  Row row{Value::Int(1), Value::Int(2)};
  EXPECT_NE(RowVersionLeafHash(s, row, RowOp::kInsert, 100, 7, 3),
            RowVersionLeafHash(s, row, RowOp::kDelete, 100, 7, 3));
}

TEST(RowSerializerTest, IdentityFieldsDistinguishLeaves) {
  Schema s = TwoIntSchema(DataType::kInt, DataType::kInt);
  Row row{Value::Int(1), Value::Int(2)};
  Hash256 base = RowVersionLeafHash(s, row, RowOp::kInsert, 100, 7, 3);
  EXPECT_NE(base, RowVersionLeafHash(s, row, RowOp::kInsert, 101, 7, 3));
  EXPECT_NE(base, RowVersionLeafHash(s, row, RowOp::kInsert, 100, 8, 3));
  EXPECT_NE(base, RowVersionLeafHash(s, row, RowOp::kInsert, 100, 7, 4));
}

TEST(RowSerializerTest, HiddenColumnsExcluded) {
  Schema s = TwoIntSchema(DataType::kInt, DataType::kInt);
  Row row{Value::Int(1), Value::Int(2)};
  auto without = SerializeRowVersion(s, row, RowOp::kInsert, 100, 7, 3);

  Schema with_hidden = s;
  with_hidden.AddColumn("sys", DataType::kBigInt, true, 0, /*hidden=*/true);
  Row row_hidden{Value::Int(1), Value::Int(2), Value::BigInt(999)};
  auto with = SerializeRowVersion(with_hidden, row_hidden, RowOp::kInsert,
                                  100, 7, 3);
  EXPECT_EQ(without, with);
}

TEST(RowSerializerTest, DroppedColumnValuesStillSerialize) {
  // Historical versions carry values in logically dropped columns; those
  // values must keep contributing to the hash so old roots keep verifying.
  Schema s = TwoIntSchema(DataType::kInt, DataType::kInt);
  Row row{Value::Int(1), Value::Int(2)};
  auto before = SerializeRowVersion(s, row, RowOp::kInsert, 100, 7, 3);

  Schema dropped = s;
  dropped.mutable_column(1)->dropped = true;
  auto after = SerializeRowVersion(dropped, row, RowOp::kInsert, 100, 7, 3);
  EXPECT_EQ(before, after);
}

TEST(RowSerializerTest, ValueChangesChangeHash) {
  Schema s = TwoIntSchema(DataType::kInt, DataType::kInt);
  EXPECT_NE(RowVersionLeafHash(s, {Value::Int(1), Value::Int(2)},
                               RowOp::kInsert, 100, 7, 3),
            RowVersionLeafHash(s, {Value::Int(1), Value::Int(3)},
                               RowOp::kInsert, 100, 7, 3));
}

TEST(RowSerializerTest, AllValueTypesSerialize) {
  Schema s;
  s.AddColumn("b", DataType::kBool, true);
  s.AddColumn("si", DataType::kSmallInt, true);
  s.AddColumn("i", DataType::kInt, true);
  s.AddColumn("bi", DataType::kBigInt, true);
  s.AddColumn("d", DataType::kDouble, true);
  s.AddColumn("v", DataType::kVarchar, true);
  s.AddColumn("vb", DataType::kVarbinary, true);
  s.AddColumn("ts", DataType::kTimestamp, true);
  s.SetPrimaryKey({0});
  Row row{Value::Bool(true),    Value::SmallInt(-2), Value::Int(3),
          Value::BigInt(-4),    Value::Double(5.5),  Value::Varchar("six"),
          Value::Varbinary({7}), Value::Timestamp(8)};
  auto bytes = SerializeRowVersion(s, row, RowOp::kInsert, 1, 2, 3);
  EXPECT_GT(bytes.size(), 8u * 3);  // header + 8 columns with metadata

  // Varchar "six" and Varbinary {'s','i','x'} at the same ordinal must
  // differ via the type byte.
  Schema s2 = s;
  s2.mutable_column(5)->type = DataType::kVarbinary;
  Row row2 = row;
  row2[5] = Value::Varbinary({'s', 'i', 'x'});
  EXPECT_NE(bytes, SerializeRowVersion(s2, row2, RowOp::kInsert, 1, 2, 3));
}

}  // namespace
}  // namespace sqlledger
