// Value, Schema and Row encode/decode tests.

#include <gtest/gtest.h>

#include "catalog/row.h"
#include "catalog/schema.h"
#include "catalog/value.h"
#include "util/coding.h"

namespace sqlledger {
namespace {

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_EQ(Value::Int(42).int_value(), 42);
  EXPECT_EQ(Value::SmallInt(-5).smallint_value(), -5);
  EXPECT_EQ(Value::BigInt(INT64_MIN).bigint_value(), INT64_MIN);
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Varchar("abc").string_value(), "abc");
  EXPECT_EQ(Value::Timestamp(123).AsInt64(), 123);
  EXPECT_TRUE(Value::Null(DataType::kInt).is_null());
  EXPECT_FALSE(Value::Int(0).is_null());
}

TEST(ValueTest, NullsSortFirstAndEqual) {
  Value null_int = Value::Null(DataType::kInt);
  Value null_str = Value::Null(DataType::kVarchar);
  EXPECT_EQ(null_int.Compare(null_str), 0);
  EXPECT_LT(null_int.Compare(Value::Int(INT32_MIN)), 0);
  EXPECT_GT(Value::Varchar("").Compare(null_str), 0);
}

TEST(ValueTest, CrossWidthIntegerComparison) {
  EXPECT_EQ(Value::SmallInt(7).Compare(Value::BigInt(7)), 0);
  EXPECT_LT(Value::Int(-1).Compare(Value::SmallInt(0)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Varchar("abc").Compare(Value::Varchar("abd")), 0);
  EXPECT_LT(Value::Varchar("ab").Compare(Value::Varchar("abc")), 0);
  EXPECT_EQ(Value::Varchar("abc").Compare(Value::Varchar("abc")), 0);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null(DataType::kInt).ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Varchar("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Varbinary({0xDE, 0xAD}).ToString(), "0xdead");
}

TEST(ValueTest, CastWidening) {
  auto v = Value::SmallInt(100).CastTo(DataType::kBigInt);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->bigint_value(), 100);
  EXPECT_EQ(v->type(), DataType::kBigInt);
}

TEST(ValueTest, CastNarrowingChecksRange) {
  EXPECT_TRUE(Value::BigInt(40000).CastTo(DataType::kSmallInt).status().code() ==
              StatusCode::kInvalidArgument);
  auto ok = Value::BigInt(30000).CastTo(DataType::kSmallInt);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->smallint_value(), 30000);
}

TEST(ValueTest, CastIntToVarchar) {
  auto v = Value::Int(42).CastTo(DataType::kVarchar);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "42");
}

TEST(ValueTest, CastNullKeepsNull) {
  auto v = Value::Null(DataType::kInt).CastTo(DataType::kVarchar);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  EXPECT_EQ(v->type(), DataType::kVarchar);
}

TEST(ValueTest, UnsupportedCastFails) {
  EXPECT_EQ(Value::Varchar("x").CastTo(DataType::kInt).status().code(),
            StatusCode::kNotSupported);
}

TEST(ValueTest, EncodeDecodeRoundTripAllTypes) {
  std::vector<Value> values = {
      Value::Bool(true),
      Value::SmallInt(-123),
      Value::Int(INT32_MIN),
      Value::BigInt(INT64_MAX),
      Value::Double(-1.5e300),
      Value::Varchar("hello \0 world"),
      Value::Varbinary({0, 1, 2, 255}),
      Value::Timestamp(1234567890123456),
      Value::Null(DataType::kVarchar),
      Value::Null(DataType::kDouble),
  };
  std::vector<uint8_t> buf;
  for (const Value& v : values) v.EncodeTo(&buf);
  Decoder dec{Slice(buf)};
  for (const Value& expected : values) {
    auto got = Value::DecodeFrom(&dec);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->type(), expected.type());
    EXPECT_EQ(got->is_null(), expected.is_null());
    EXPECT_EQ(got->Compare(expected), 0);
  }
  EXPECT_TRUE(dec.done());
}

TEST(ValueTest, DecodeRejectsBadTypeId) {
  std::vector<uint8_t> buf = {99, 0};
  Decoder dec{Slice(buf)};
  EXPECT_EQ(Value::DecodeFrom(&dec).status().code(), StatusCode::kCorruption);
}

TEST(SchemaTest, AddAndFindColumns) {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("name", DataType::kVarchar, true, 32);
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.FindColumn("name"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
  EXPECT_EQ(s.column(0).column_id, 1u);
  EXPECT_EQ(s.column(1).column_id, 2u);
}

TEST(SchemaTest, DroppedColumnsInvisibleToFind) {
  Schema s;
  s.AddColumn("a", DataType::kInt, true);
  s.mutable_column(0)->dropped = true;
  EXPECT_EQ(s.FindColumn("a"), -1);
}

TEST(SchemaTest, ValidateRowChecksArityTypesNullsLengths) {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("name", DataType::kVarchar, true, 3);
  s.SetPrimaryKey({0});

  EXPECT_TRUE(s.ValidateRow({Value::BigInt(1), Value::Varchar("abc")}).ok());
  EXPECT_FALSE(s.ValidateRow({Value::BigInt(1)}).ok());  // arity
  EXPECT_FALSE(
      s.ValidateRow({Value::Null(DataType::kBigInt), Value::Varchar("a")})
          .ok());  // null in non-nullable
  EXPECT_FALSE(
      s.ValidateRow({Value::Int(1), Value::Varchar("a")}).ok());  // type
  EXPECT_FALSE(
      s.ValidateRow({Value::BigInt(1), Value::Varchar("abcd")}).ok());  // len
}

TEST(SchemaTest, PadRowFillsHiddenAndDropped) {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("gone", DataType::kInt, true);
  s.mutable_column(1)->dropped = true;
  s.AddColumn("sys", DataType::kBigInt, true, 0, /*hidden=*/true);
  s.AddColumn("name", DataType::kVarchar, true);
  s.SetPrimaryKey({0});

  auto padded = s.PadRow({Value::BigInt(1), Value::Varchar("x")});
  ASSERT_TRUE(padded.ok());
  ASSERT_EQ(padded->size(), 4u);
  EXPECT_EQ((*padded)[0].AsInt64(), 1);
  EXPECT_TRUE((*padded)[1].is_null());
  EXPECT_TRUE((*padded)[2].is_null());
  EXPECT_EQ((*padded)[3].string_value(), "x");

  EXPECT_FALSE(s.PadRow({Value::BigInt(1)}).ok());  // too few
  EXPECT_FALSE(
      s.PadRow({Value::BigInt(1), Value::Varchar("x"), Value::Int(3)}).ok());
}

TEST(SchemaTest, ExtractKeyAndVisibleOrdinals) {
  Schema s;
  s.AddColumn("a", DataType::kBigInt, false);
  s.AddColumn("b", DataType::kBigInt, false);
  s.AddColumn("sys", DataType::kBigInt, true, 0, /*hidden=*/true);
  s.SetPrimaryKey({1, 0});

  Row row{Value::BigInt(1), Value::BigInt(2), Value::BigInt(3)};
  KeyTuple key = s.ExtractKey(row);
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0].AsInt64(), 2);
  EXPECT_EQ(key[1].AsInt64(), 1);
  EXPECT_EQ(s.VisibleOrdinals(), (std::vector<size_t>{0, 1}));
}

TEST(RowCodecTest, RoundTrip) {
  Row row{Value::BigInt(7), Value::Varchar("x"), Value::Null(DataType::kInt)};
  std::vector<uint8_t> buf;
  EncodeRow(row, &buf);
  Decoder dec{Slice(buf)};
  auto decoded = DecodeRow(&dec);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].AsInt64(), 7);
  EXPECT_TRUE((*decoded)[2].is_null());
}

TEST(RowCodecTest, PayloadBytes) {
  Row row{Value::Int(1), Value::Varchar("abcde"), Value::Null(DataType::kInt),
          Value::Double(1.0)};
  EXPECT_EQ(RowPayloadBytes(row), 4u + 5u + 0u + 8u);
}

TEST(KeyCompareTest, Lexicographic) {
  KeyTuple a{Value::BigInt(1), Value::BigInt(2)};
  KeyTuple b{Value::BigInt(1), Value::BigInt(3)};
  KeyTuple prefix{Value::BigInt(1)};
  EXPECT_LT(CompareKeys(a, b), 0);
  EXPECT_GT(CompareKeys(b, a), 0);
  EXPECT_EQ(CompareKeys(a, a), 0);
  EXPECT_LT(CompareKeys(prefix, a), 0);  // shorter sorts first on tie
}

}  // namespace
}  // namespace sqlledger
