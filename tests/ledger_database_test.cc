// Facade-level unit tests: transaction lifecycle edges, key mapping after
// schema evolution, options validation, and a randomized
// workload -> crash -> recover -> verify round trip.

#include <gtest/gtest.h>

#include "ledger/verifier.h"
#include "test_util.h"
#include "util/random.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

TEST(LedgerDatabaseTest, CreateTableValidation) {
  auto db = OpenTestDb();
  Schema no_pk;
  no_pk.AddColumn("a", DataType::kInt, true);
  EXPECT_EQ(db->CreateTable("t", no_pk, TableKind::kUpdateable).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db->CreateTable("", SimpleUserSchema(),
                            TableKind::kUpdateable)
                .code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  EXPECT_EQ(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).code(),
      StatusCode::kAlreadyExists);
}

TEST(LedgerDatabaseTest, CommitOfInactiveTransactionRejected) {
  auto db = OpenTestDb();
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  auto txn = db->Begin("a");
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db->Insert(*txn, "t", {VB(1), VS("x")}).ok());
  ASSERT_TRUE(db->Commit(*txn).ok());
  // The pointer is dead after commit; committing null is also rejected.
  EXPECT_FALSE(db->Commit(nullptr).ok());
}

TEST(LedgerDatabaseTest, ReadOnlyCommitIsCheap) {
  auto db = OpenTestDb();
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  uint64_t entries_before = db->database_ledger()->total_entries();
  auto txn = db->Begin("reader");
  (void)db->Scan(*txn, "t");
  ASSERT_TRUE(db->Commit(*txn).ok());
  EXPECT_EQ(db->database_ledger()->total_entries(), entries_before);
}

TEST(LedgerDatabaseTest, DmlAfterColumnDropMapsKeysCorrectly) {
  // PK mapping from user rows must survive a dropped column that shifts
  // visible positions: table (a, b, key) with PRIMARY KEY (key), drop b.
  auto db = OpenTestDb();
  Schema s;
  s.AddColumn("a", DataType::kVarchar, true, 16);
  s.AddColumn("b", DataType::kInt, true);
  s.AddColumn("k", DataType::kBigInt, false);
  s.SetPrimaryKey({2});
  ASSERT_TRUE(db->CreateTable("t", s, TableKind::kUpdateable).ok());

  auto txn = db->Begin("app");
  ASSERT_TRUE(
      db->Insert(*txn, "t", {VS("one"), Value::Int(1), VB(100)}).ok());
  ASSERT_TRUE(db->Commit(*txn).ok());

  ASSERT_TRUE(db->DropColumn("t", "b").ok());

  // User rows now have two values: (a, k); the key is the SECOND visible
  // column but the THIRD physical one.
  auto txn2 = db->Begin("app");
  ASSERT_TRUE(db->Insert(*txn2, "t", {VS("two"), VB(200)}).ok());
  ASSERT_TRUE(db->Update(*txn2, "t", {VS("two-updated"), VB(200)}).ok());
  auto row = db->Get(*txn2, "t", {VB(200)});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].string_value(), "two-updated");
  ASSERT_TRUE(db->Delete(*txn2, "t", {VB(100)}).ok());
  ASSERT_TRUE(db->Commit(*txn2).ok());

  auto digest = db->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST(LedgerDatabaseTest, SeekFirstRespectsPrefixBoundaries) {
  auto db = OpenTestDb();
  Schema s;
  s.AddColumn("a", DataType::kBigInt, false);
  s.AddColumn("b", DataType::kBigInt, false);
  s.AddColumn("v", DataType::kVarchar, true);
  s.SetPrimaryKey({0, 1});
  ASSERT_TRUE(db->CreateTable("t", s, TableKind::kUpdateable).ok());
  auto txn = db->Begin("app");
  ASSERT_TRUE(db->Insert(*txn, "t", {VB(1), VB(5), VS("x")}).ok());
  ASSERT_TRUE(db->Insert(*txn, "t", {VB(3), VB(1), VS("y")}).ok());
  ASSERT_TRUE(db->Commit(*txn).ok());

  auto txn2 = db->Begin("app");
  auto hit = db->SeekFirst(*txn2, "t", {VB(1)});
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ((*hit)[1].AsInt64(), 5);
  // Prefix 2 has no rows; the next row (3,1) must NOT match.
  EXPECT_TRUE(db->SeekFirst(*txn2, "t", {VB(2)}).status().IsNotFound());
  ASSERT_TRUE(db->Commit(*txn2).ok());
}

TEST(LedgerDatabaseTest, DigestRequiresLedger) {
  auto db = OpenTestDb(4, /*enable_ledger=*/false);
  EXPECT_EQ(db->GenerateDigest().status().code(), StatusCode::kNotSupported);
  EXPECT_EQ(db->GetTableOperationsView().status().code(),
            StatusCode::kNotSupported);
}

TEST(LedgerDatabaseTest, AppendOnlyKindPreservedAndRegularForced) {
  auto plain = OpenTestDb(4, /*enable_ledger=*/false);
  ASSERT_TRUE(
      plain->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable)
          .ok());
  auto ref = plain->GetTableRef("t");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->kind, TableKind::kRegular);  // forced without a ledger
}

// Randomized round trip: arbitrary committed workload + savepoints +
// schema changes, then crash recovery, then full verification.
class WorkloadRoundTrip : public TempDirTest,
                          public ::testing::WithParamInterface<int> {};

TEST_P(WorkloadRoundTrip, RecoversAndVerifies) {
  Random rng(static_cast<uint64_t>(GetParam()) * 31337);
  LedgerDatabaseOptions options;
  options.data_dir = Path("db");
  options.database_id = "fuzzdb";
  options.block_size = 8;

  DatabaseDigest digest;
  {
    auto opened = LedgerDatabase::Open(options);
    ASSERT_TRUE(opened.ok());
    auto db = std::move(*opened);
    ASSERT_TRUE(db->CreateTable("accounts", AccountSchema(),
                                TableKind::kUpdateable)
                    .ok());
    std::set<int64_t> live;
    bool has_tag = false;
    auto make_row = [&](const std::string& name, int64_t balance) {
      Row row{VS(name), VB(balance)};
      if (has_tag) {
        row.push_back(rng.Bernoulli(0.5)
                          ? Value::Int(static_cast<int32_t>(balance % 7))
                          : Value::Null(DataType::kInt));
      }
      return row;
    };
    for (int op = 0; op < 60; op++) {
      auto txn = db->Begin("fuzz");
      ASSERT_TRUE(txn.ok());
      int64_t id = rng.UniformRange(0, 30);
      std::string name = "acct" + std::to_string(id);
      Status st;
      if (!live.count(id)) {
        st = db->Insert(*txn, "accounts", make_row(name, id));
        if (st.ok()) live.insert(id);
      } else if (rng.Bernoulli(0.6)) {
        st = db->Update(*txn, "accounts",
                        make_row(name, rng.UniformRange(0, 5000)));
      } else {
        st = db->Delete(*txn, "accounts", {VS(name)});
        if (st.ok()) live.erase(id);
      }
      ASSERT_TRUE(st.ok()) << st.ToString();
      if (rng.Bernoulli(0.2)) {
        // Partial rollback exercised mid-stream.
        ASSERT_TRUE(db->Savepoint(*txn, "sp").ok());
        (void)db->Insert(*txn, "accounts", make_row("temp", -1));
        ASSERT_TRUE(db->RollbackToSavepoint(*txn, "sp").ok());
      }
      ASSERT_TRUE(db->Commit(*txn).ok());
      if (op == 30) {
        ASSERT_TRUE(db->AddColumn("accounts", "tag", DataType::kInt).ok());
        has_tag = true;
      }
      if (rng.Bernoulli(0.1)) {
        ASSERT_TRUE(db->GenerateDigest().ok());
      }
    }
    auto d = db->GenerateDigest();
    ASSERT_TRUE(d.ok());
    digest = *d;
    // Crash: no checkpoint, no clean shutdown.
  }

  auto recovered = LedgerDatabase::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto report = VerifyLedger(recovered->get(), {digest});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadRoundTrip, ::testing::Range(1, 9));

}  // namespace
}  // namespace sqlledger
