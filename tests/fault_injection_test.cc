// Crash-recovery torture tests. A FaultInjectionEnv is threaded through the
// whole durability stack (WAL, checkpoints, digest store) and a crash is
// injected at EVERY sync point of a mixed workload. After each crash the
// database is reopened with the real filesystem and the verifier's five
// invariants must hold against every digest the workload managed to return
// before dying — never a crash, never silently accepted tampering.
//
// Also covers the targeted hardening: sticky ("poisoned") WAL writers,
// fsync-before-rename checkpoints, and crash-durable digest blobs.

#include <gtest/gtest.h>

#include "ledger/digest_store.h"
#include "ledger/verifier.h"
#include "storage/checkpoint.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class FaultInjectionTest : public TempDirTest {
 protected:
  LedgerDatabaseOptions MakeOptions(const std::string& subdir, Env* env) {
    LedgerDatabaseOptions options;
    options.data_dir = Path(subdir);
    options.database_id = "faultdb";
    options.block_size = 3;
    options.sync_wal = true;
    options.env = env;
    options.clock = [this] { return ++clock_; };
    return options;
  }

  int64_t clock_ = 1000000;
};

// ---- Sticky (poisoned) WAL writer ----

TEST_F(FaultInjectionTest, WalIsPoisonedAfterFailedSync) {
  FaultInjectionEnv env;
  auto wal = Wal::Open(Path("wal.log"),
                       WalOptions{.sync = true, .env = &env});
  ASSERT_TRUE(wal.ok());
  std::string payload = "record";
  ASSERT_TRUE((*wal)->AppendRecord(Slice(payload)).ok());

  env.FailNthSync(1);
  ASSERT_FALSE((*wal)->AppendRecord(Slice(payload)).ok());
  // The env is healthy again, but the log has a hole: appending past it
  // would replay without its predecessor. Every append must keep failing.
  EXPECT_FALSE((*wal)->sticky_error().ok());
  EXPECT_FALSE((*wal)->AppendRecord(Slice(payload)).ok());
  EXPECT_FALSE((*wal)->Sync().ok());

  // Rotation starts a fresh hole-free log and clears the poison.
  ASSERT_TRUE((*wal)->Reset().ok());
  EXPECT_TRUE((*wal)->sticky_error().ok());
  EXPECT_TRUE((*wal)->AppendRecord(Slice(payload)).ok());
}

TEST_F(FaultInjectionTest, WalIsPoisonedAfterFailedWrite) {
  FaultInjectionEnv env;
  auto wal = Wal::Open(Path("wal.log"),
                       WalOptions{.sync = false, .env = &env});
  ASSERT_TRUE(wal.ok());
  std::string payload = "record";
  env.FailNthWrite(1);
  ASSERT_FALSE((*wal)->AppendRecord(Slice(payload)).ok());
  EXPECT_FALSE((*wal)->AppendRecord(Slice(payload)).ok());
}

TEST_F(FaultInjectionTest, WalStaysPoisonedWhenResetFails) {
  FaultInjectionEnv env;
  auto wal = Wal::Open(Path("wal.log"),
                       WalOptions{.sync = false, .env = &env});
  ASSERT_TRUE(wal.ok());
  std::string payload = "record";
  ASSERT_TRUE((*wal)->AppendRecord(Slice(payload)).ok());
  env.FailNthRename(1);
  ASSERT_FALSE((*wal)->Reset().ok());
  // No usable log file after the failed rotation: appends must fail
  // cleanly (not crash, not write to the stale generation).
  EXPECT_FALSE((*wal)->AppendRecord(Slice(payload)).ok());
}

// ---- Checkpoint durability protocol ----

TEST_F(FaultInjectionTest, CheckpointSurvivesCrashImmediatelyAfterWrite) {
  TableStore t(100, "t", SimpleUserSchema());
  ASSERT_TRUE(t.Insert({VB(1), VS("x")}).ok());

  FaultInjectionEnv env;
  std::string path = Path("ckpt");
  ASSERT_TRUE(
      WriteCheckpoint(path, Slice(std::string("meta")), {&t}, &env).ok());
  // Power loss the instant WriteCheckpoint returns: the protocol synced the
  // file before the rename and the directory after it, so nothing is lost.
  env.SimulateCrash();

  auto loaded = ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->tables[0]->row_count(), 1u);
}

TEST_F(FaultInjectionTest, CrashDuringCheckpointKeepsPreviousGeneration) {
  TableStore t(100, "t", SimpleUserSchema());
  ASSERT_TRUE(t.Insert({VB(1), VS("gen1")}).ok());
  std::string path = Path("ckpt");
  ASSERT_TRUE(
      WriteCheckpoint(path, Slice(std::string("gen1")), {&t}, nullptr).ok());

  // Second generation crashes at its directory sync (sync #1 is the temp
  // file fsync, sync #2 the dir fsync): the un-durable renames roll back.
  ASSERT_TRUE(t.Insert({VB(2), VS("gen2")}).ok());
  FaultInjectionEnv env;
  env.CrashAtSync(2);
  ASSERT_FALSE(
      WriteCheckpoint(path, Slice(std::string("gen2")), {&t}, &env).ok());

  auto loaded = ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(std::string(loaded->meta.begin(), loaded->meta.end()), "gen1");
  EXPECT_EQ(loaded->tables[0]->row_count(), 1u);
}

TEST_F(FaultInjectionTest, CrashDuringCheckpointTempWriteLeavesNoCheckpoint) {
  TableStore t(100, "t", SimpleUserSchema());
  ASSERT_TRUE(t.Insert({VB(1), VS("x")}).ok());
  FaultInjectionEnv env;
  env.CrashAtSync(1);  // the temp file fsync, before any rename
  std::string path = Path("ckpt");
  ASSERT_FALSE(
      WriteCheckpoint(path, Slice(std::string("meta")), {&t}, &env).ok());
  // The torn temp file never reached the checkpoint's name.
  EXPECT_TRUE(ReadCheckpoint(path).status().IsNotFound());
}

// ---- Digest store durability and write-once ----

TEST_F(FaultInjectionTest, UploadedDigestBlobSurvivesCrash) {
  auto db = OpenTestDb(/*block_size=*/4);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  ASSERT_TRUE(InsertOne(db.get(), "t", 1, "x").ok());

  FaultInjectionEnv env;
  auto store = ImmutableBlobDigestStore::Open(Path("digests"), &env);
  ASSERT_TRUE(store.ok());
  auto uploaded = GenerateAndUploadDigest(db.get(), store->get());
  ASSERT_TRUE(uploaded.ok()) << uploaded.status().ToString();
  env.SimulateCrash();

  // A reopened store on the real filesystem still holds the digest intact.
  auto reopened = ImmutableBlobDigestStore::Open(Path("digests"));
  ASSERT_TRUE(reopened.ok());
  auto all = (*reopened)->ListAll();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].block_id, uploaded->block_id);
}

TEST_F(FaultInjectionTest, FailedDigestUploadLeavesNoBlobBehind) {
  auto db = OpenTestDb(/*block_size=*/4);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  ASSERT_TRUE(InsertOne(db.get(), "t", 1, "x").ok());

  FaultInjectionEnv env;
  auto store = ImmutableBlobDigestStore::Open(Path("digests"), &env);
  ASSERT_TRUE(store.ok());
  env.FailNthSync(1);
  EXPECT_FALSE(GenerateAndUploadDigest(db.get(), store->get()).ok());

  // A half-written blob must not pollute the trusted store.
  auto reopened = ImmutableBlobDigestStore::Open(Path("digests"));
  ASSERT_TRUE(reopened.ok());
  auto all = (*reopened)->ListAll();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_TRUE(all->empty());
}

TEST_F(FaultInjectionTest, DigestBlobsAreWriteOnce) {
  auto db = OpenTestDb(/*block_size=*/4);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  ASSERT_TRUE(InsertOne(db.get(), "t", 1, "x").ok());
  auto store = ImmutableBlobDigestStore::Open(Path("digests"));
  ASSERT_TRUE(store.ok());
  auto first = GenerateAndUploadDigest(db.get(), store->get());
  ASSERT_TRUE(first.ok());

  // Exclusive create refuses the occupied name and allocates the next one,
  // so a second upload can never overwrite the first.
  ASSERT_TRUE(InsertOne(db.get(), "t", 2, "y").ok());
  auto second = GenerateAndUploadDigest(db.get(), store->get());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto all = (*store)->ListAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].block_id, first->block_id);
  EXPECT_EQ((*all)[1].block_id, second->block_id);
}

// ---- The torture loop: crash at every sync point ----

// Runs a mixed workload (inserts, updates, deletes, digests, checkpoints)
// until an injected fault stops it. Digests returned OK are durable by
// contract (their block-close WAL record was fsynced), so the caller keeps
// them as the trusted external store the verifier is run against.
void RunTortureWorkload(LedgerDatabase* db,
                        std::vector<DatabaseDigest>* durable_digests) {
  if (!db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok())
    return;
  for (int i = 0; i < 14; i++) {
    auto txn = db->Begin("torture");
    if (!txn.ok()) return;
    Status st =
        db->Insert(*txn, "t", {VB(i), VS("v" + std::to_string(i))});
    if (st.ok() && i % 3 == 1)
      st = db->Update(*txn, "t", {VB(i - 1), VS("updated")});
    if (st.ok() && i % 4 == 3) st = db->Delete(*txn, "t", {VB(i - 2)});
    if (!st.ok()) {
      db->Abort(*txn);
      return;
    }
    if (!db->Commit(*txn).ok()) return;
    if (i % 5 == 2) {
      auto digest = db->GenerateDigest();
      if (!digest.ok()) return;
      durable_digests->push_back(*digest);
    }
    if (i % 6 == 4 && !db->Checkpoint().ok()) return;
  }
  auto digest = db->GenerateDigest();
  if (digest.ok()) durable_digests->push_back(*digest);
}

TEST_F(FaultInjectionTest, CrashAtEverySyncPointRecoversVerifiably) {
  bool completed_without_crash = false;
  int crash_point = 1;
  for (; crash_point < 300 && !completed_without_crash; crash_point++) {
    std::string subdir = "crash" + std::to_string(crash_point);
    FaultInjectionEnv env(nullptr, /*seed=*/1000 + crash_point);
    env.CrashAtSync(crash_point);

    std::vector<DatabaseDigest> digests;
    {
      auto db = LedgerDatabase::Open(MakeOptions(subdir, &env));
      if (db.ok()) RunTortureWorkload(db->get(), &digests);
      // else: the crash hit during Open's initial checkpoint — still a
      // valid crash point; recovery below must cope with the leftovers.
    }
    completed_without_crash = !env.crashed();

    // Reopen on the real filesystem, exactly like a machine after power
    // loss. Recovery must succeed and the state must verify against every
    // digest handed out before the crash.
    auto db = LedgerDatabase::Open(MakeOptions(subdir, nullptr));
    ASSERT_TRUE(db.ok()) << "crash point " << crash_point
                         << ": recovery failed: " << db.status().ToString();
    auto report = VerifyLedger(db->get(), digests);
    ASSERT_TRUE(report.ok()) << "crash point " << crash_point << ": "
                             << report.status().ToString();
    EXPECT_TRUE(report->ok())
        << "crash point " << crash_point << ": " << report->Summary();

    // The reopened database keeps working: it can commit and re-verify.
    if ((*db)->GetTableRef("t").ok()) {
      ASSERT_TRUE(InsertOne(db->get(), "t", 1000 + crash_point, "post").ok())
          << "crash point " << crash_point;
    }
    auto digest = (*db)->GenerateDigest();
    ASSERT_TRUE(digest.ok()) << "crash point " << crash_point;
    digests.push_back(*digest);
    auto report2 = VerifyLedger(db->get(), digests);
    ASSERT_TRUE(report2.ok());
    EXPECT_TRUE(report2->ok())
        << "crash point " << crash_point << ": " << report2->Summary();

    // One more clean close/reopen: post-crash commits must be recoverable
    // too (e.g. they must not hide behind a torn tail left in the WAL).
    db->reset();
    auto db2 = LedgerDatabase::Open(MakeOptions(subdir, nullptr));
    ASSERT_TRUE(db2.ok()) << "crash point " << crash_point << ": "
                          << db2.status().ToString();
    auto report3 = VerifyLedger(db2->get(), digests);
    ASSERT_TRUE(report3.ok());
    EXPECT_TRUE(report3->ok())
        << "crash point " << crash_point
        << " (second reopen): " << report3->Summary();
  }
  // The loop must have walked past the workload's last sync point.
  EXPECT_TRUE(completed_without_crash);
  // Sanity: the workload has a meaningful number of sync points.
  EXPECT_GT(crash_point, 10);
}

}  // namespace
}  // namespace sqlledger
