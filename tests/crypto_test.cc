// SHA-256 against the NIST FIPS 180-4 vectors, incremental hashing, and
// HMAC-SHA256 against the RFC 4231 vectors.

#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace sqlledger {
namespace {

std::string DigestHex(const std::string& input) {
  return Sha256::Digest(Slice(input)).ToHex();
}

TEST(Sha256Test, NistEmptyString) {
  EXPECT_EQ(DigestHex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, NistAbc) {
  EXPECT_EQ(DigestHex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, NistTwoBlockMessage) {
  EXPECT_EQ(
      DigestHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, NistMillionAs) {
  Sha256 ctx;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; i++) ctx.Update(Slice(chunk));
  EXPECT_EQ(ctx.Finish().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data =
      "The exact split points of Update calls must not affect the digest.";
  Hash256 oneshot = Sha256::Digest(Slice(data));
  for (size_t split = 0; split <= data.size(); split += 7) {
    Sha256 ctx;
    ctx.Update(Slice(data.data(), split));
    ctx.Update(Slice(data.data() + split, data.size() - split));
    EXPECT_EQ(ctx.Finish(), oneshot) << "split at " << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding boundary cases.
  for (size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string data(n, 'x');
    Sha256 a;
    a.Update(Slice(data));
    Sha256 b;
    for (char c : data) b.Update(Slice(&c, 1));
    EXPECT_EQ(a.Finish(), b.Finish()) << "length " << n;
  }
}

TEST(Sha256Test, Digest2MatchesConcatenation) {
  std::string a = "first", b = "second";
  EXPECT_EQ(Sha256::Digest2(Slice(a), Slice(b)),
            Sha256::Digest(Slice(a + b)));
}

TEST(Hash256Test, HexRoundTrip) {
  Hash256 h = Sha256::Digest(Slice(std::string("x")));
  Hash256 parsed;
  ASSERT_TRUE(Hash256::FromHex(h.ToHex(), &parsed));
  EXPECT_EQ(parsed, h);
}

TEST(Hash256Test, FromHexRejectsBadInput) {
  Hash256 h;
  EXPECT_FALSE(Hash256::FromHex("deadbeef", &h));          // too short
  EXPECT_FALSE(Hash256::FromHex(std::string(64, 'z'), &h));  // not hex
}

TEST(Hash256Test, IsZero) {
  Hash256 zero;
  EXPECT_TRUE(zero.IsZero());
  zero.bytes[31] = 1;
  EXPECT_FALSE(zero.IsZero());
}

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  std::vector<uint8_t> key(20, 0x0b);
  Hash256 mac = HmacSha256(Slice(key), Slice(std::string("Hi There")));
  EXPECT_EQ(mac.ToHex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2) {
  std::string key = "Jefe";
  Hash256 mac =
      HmacSha256(Slice(key), Slice(std::string("what do ya want for nothing?")));
  EXPECT_EQ(mac.ToHex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20-byte 0xaa key, 50 bytes of 0xdd.
TEST(HmacTest, Rfc4231Case3) {
  std::vector<uint8_t> key(20, 0xaa);
  std::vector<uint8_t> data(50, 0xdd);
  Hash256 mac = HmacSha256(Slice(key), Slice(data));
  EXPECT_EQ(mac.ToHex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size gets hashed first.
TEST(HmacTest, Rfc4231Case6LongKey) {
  std::vector<uint8_t> key(131, 0xaa);
  Hash256 mac = HmacSha256(
      Slice(key),
      Slice(std::string("Test Using Larger Than Block-Size Key - Hash Key "
                        "First")));
  EXPECT_EQ(mac.ToHex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSignerTest, SignVerifyRoundTrip) {
  HmacSigner signer("key-1", {1, 2, 3, 4});
  Hash256 digest = Sha256::Digest(Slice(std::string("block root")));
  std::vector<uint8_t> sig = signer.Sign(digest);
  EXPECT_TRUE(signer.Verify(digest, Slice(sig)));
}

TEST(HmacSignerTest, RejectsTamperedSignature) {
  HmacSigner signer("key-1", {1, 2, 3, 4});
  Hash256 digest = Sha256::Digest(Slice(std::string("block root")));
  std::vector<uint8_t> sig = signer.Sign(digest);
  sig[5] ^= 0x80;
  EXPECT_FALSE(signer.Verify(digest, Slice(sig)));
}

TEST(HmacSignerTest, RejectsWrongKey) {
  HmacSigner a("a", {1, 2, 3});
  HmacSigner b("b", {9, 9, 9});
  Hash256 digest = Sha256::Digest(Slice(std::string("x")));
  EXPECT_FALSE(b.Verify(digest, Slice(a.Sign(digest))));
}

TEST(HmacSignerTest, RejectsWrongLength) {
  HmacSigner signer("k", {1});
  Hash256 digest;
  std::vector<uint8_t> sig = signer.Sign(digest);
  sig.pop_back();
  EXPECT_FALSE(signer.Verify(digest, Slice(sig)));
}

}  // namespace
}  // namespace sqlledger
