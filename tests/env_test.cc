// Storage environment: PosixEnv basics and every fault family of
// FaultInjectionEnv (countdown errors, crash simulation with torn tails and
// rename rollback, read corruption).

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "storage/env.h"

namespace sqlledger {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sl_env_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    for (auto it = std::filesystem::recursive_directory_iterator(
             dir_, std::filesystem::directory_options::skip_permission_denied,
             ec);
         it != std::filesystem::recursive_directory_iterator(); ++it) {
      std::filesystem::permissions(it->path(),
                                   std::filesystem::perms::owner_all,
                                   std::filesystem::perm_options::add, ec);
    }
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static Status WriteString(Env* env, const std::string& path,
                            const std::string& data, bool sync = false) {
    auto file =
        env->NewWritableFile(path, WritableFileOptions{.truncate = true});
    if (!file.ok()) return file.status();
    SL_RETURN_IF_ERROR((*file)->Append(Slice(data)));
    if (sync) SL_RETURN_IF_ERROR((*file)->Sync());
    return (*file)->Close();
  }

  static std::string ReadString(Env* env, const std::string& path) {
    auto bytes = env->ReadFile(path);
    EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
    if (!bytes.ok()) return "";
    return std::string(bytes->begin(), bytes->end());
  }

  std::filesystem::path dir_;
};

TEST_F(EnvTest, PosixWriteReadRoundTrip) {
  Env* env = Env::Default();
  ASSERT_TRUE(WriteString(env, Path("a.txt"), "hello world").ok());
  EXPECT_EQ(ReadString(env, Path("a.txt")), "hello world");
  EXPECT_TRUE(env->FileExists(Path("a.txt")));
  EXPECT_FALSE(env->IsDirectory(Path("a.txt")));
  EXPECT_TRUE(env->IsDirectory(dir_.string()));
  auto size = env->GetFileSize(Path("a.txt"));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
}

TEST_F(EnvTest, PosixAppendModeExtendsFile) {
  Env* env = Env::Default();
  ASSERT_TRUE(WriteString(env, Path("a.txt"), "one").ok());
  auto file = env->NewWritableFile(Path("a.txt"), WritableFileOptions{});
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(Slice(std::string("two"))).ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadString(env, Path("a.txt")), "onetwo");
}

TEST_F(EnvTest, PosixExclusiveCreateRefusesExistingFile) {
  Env* env = Env::Default();
  ASSERT_TRUE(WriteString(env, Path("once.txt"), "v1").ok());
  auto file = env->NewWritableFile(Path("once.txt"),
                                   WritableFileOptions{.exclusive = true});
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ReadString(env, Path("once.txt")), "v1");
}

TEST_F(EnvTest, PosixGetChildrenSorted) {
  Env* env = Env::Default();
  ASSERT_TRUE(WriteString(env, Path("b"), "x").ok());
  ASSERT_TRUE(WriteString(env, Path("a"), "x").ok());
  ASSERT_TRUE(env->CreateDirs(Path("sub/deep")).ok());
  auto children = env->GetChildren(dir_.string());
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"a", "b", "sub"}));
  EXPECT_TRUE(env->GetChildren(Path("missing")).status().IsNotFound());
}

TEST_F(EnvTest, PosixRenameAndRemove) {
  Env* env = Env::Default();
  ASSERT_TRUE(WriteString(env, Path("from"), "data").ok());
  ASSERT_TRUE(env->RenameFile(Path("from"), Path("to")).ok());
  EXPECT_FALSE(env->FileExists(Path("from")));
  EXPECT_EQ(ReadString(env, Path("to")), "data");
  ASSERT_TRUE(env->SyncDir(dir_.string()).ok());
  ASSERT_TRUE(env->RemoveFile(Path("to")).ok());
  EXPECT_FALSE(env->FileExists(Path("to")));
}

TEST_F(EnvTest, PosixMakeReadOnly) {
  Env* env = Env::Default();
  ASSERT_TRUE(WriteString(env, Path("blob"), "immutable").ok());
  ASSERT_TRUE(env->MakeReadOnly(Path("blob")).ok());
  auto perms = std::filesystem::status(Path("blob")).permissions();
  EXPECT_EQ(perms & std::filesystem::perms::owner_write,
            std::filesystem::perms::none);
  if (::geteuid() != 0) {
    // Root bypasses permission checks, so only assert the open is refused
    // when running unprivileged.
    auto reopened = env->NewWritableFile(Path("blob"), WritableFileOptions{});
    EXPECT_FALSE(reopened.ok());
  }
  EXPECT_EQ(ReadString(env, Path("blob")), "immutable");
}

TEST_F(EnvTest, FailNthWriteFailsExactlyThatWrite) {
  FaultInjectionEnv env;
  env.FailNthWrite(2);
  auto file =
      env.NewWritableFile(Path("f"), WritableFileOptions{.truncate = true});
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append(Slice(std::string("first"))).ok());
  EXPECT_FALSE((*file)->Append(Slice(std::string("second"))).ok());
  EXPECT_TRUE((*file)->Append(Slice(std::string("third"))).ok());
}

TEST_F(EnvTest, FailNthSyncFailsExactlyThatSync) {
  FaultInjectionEnv env;
  env.FailNthSync(2);
  auto file =
      env.NewWritableFile(Path("f"), WritableFileOptions{.truncate = true});
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(Slice(std::string("data"))).ok());
  EXPECT_TRUE((*file)->Sync().ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_TRUE((*file)->Sync().ok());
  EXPECT_FALSE(env.crashed());
}

TEST_F(EnvTest, FailNthRenameFailsExactlyThatRename) {
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteString(&env, Path("a"), "x").ok());
  ASSERT_TRUE(WriteString(&env, Path("b"), "y").ok());
  env.FailNthRename(1);
  EXPECT_FALSE(env.RenameFile(Path("a"), Path("a2")).ok());
  EXPECT_TRUE(env.FileExists(Path("a")));
  EXPECT_TRUE(env.RenameFile(Path("b"), Path("b2")).ok());
}

TEST_F(EnvTest, CrashDropsUnsyncedTail) {
  FaultInjectionEnv env;
  auto file =
      env.NewWritableFile(Path("f"), WritableFileOptions{.truncate = true});
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(Slice(std::string("durable"))).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append(Slice(std::string("-volatile-volatile"))).ok());
  env.SimulateCrash();
  ASSERT_TRUE((*file)->Close().ok());  // closing after a crash is allowed

  Env* posix = Env::Default();
  auto size = posix->GetFileSize(Path("f"));
  ASSERT_TRUE(size.ok());
  // Everything synced survives; the un-synced tail is gone or torn short.
  EXPECT_GE(*size, 7u);
  EXPECT_LT(*size, 7u + 17u);
  EXPECT_EQ(ReadString(posix, Path("f")).substr(0, 7), "durable");
}

TEST_F(EnvTest, CrashRollsBackRenameWithoutDirSync) {
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteString(&env, Path("from"), "data", /*sync=*/true).ok());
  ASSERT_TRUE(env.RenameFile(Path("from"), Path("to")).ok());
  env.SimulateCrash();

  Env* posix = Env::Default();
  EXPECT_TRUE(posix->FileExists(Path("from")));
  EXPECT_FALSE(posix->FileExists(Path("to")));
  EXPECT_EQ(ReadString(posix, Path("from")), "data");
}

TEST_F(EnvTest, SyncDirMakesRenameCrashDurable) {
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteString(&env, Path("from"), "data", /*sync=*/true).ok());
  ASSERT_TRUE(env.RenameFile(Path("from"), Path("to")).ok());
  ASSERT_TRUE(env.SyncDir(dir_.string()).ok());
  env.SimulateCrash();

  Env* posix = Env::Default();
  EXPECT_FALSE(posix->FileExists(Path("from")));
  EXPECT_EQ(ReadString(posix, Path("to")), "data");
}

TEST_F(EnvTest, CrashAtSyncFiresOnNthSyncThenEverythingFails) {
  FaultInjectionEnv env;
  env.CrashAtSync(2);
  auto file =
      env.NewWritableFile(Path("f"), WritableFileOptions{.truncate = true});
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(Slice(std::string("a"))).ok());
  EXPECT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append(Slice(std::string("b"))).ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_TRUE(env.crashed());
  // The storage is gone: every further operation errors out.
  EXPECT_FALSE((*file)->Append(Slice(std::string("c"))).ok());
  EXPECT_FALSE(env.NewWritableFile(Path("g"), {}).ok());
  EXPECT_FALSE(env.NewSequentialFile(Path("f")).ok());
  EXPECT_FALSE(env.RenameFile(Path("f"), Path("g")).ok());
  EXPECT_FALSE(env.RemoveFile(Path("f")).ok());
  EXPECT_FALSE(env.CreateDirs(Path("d")).ok());
}

TEST_F(EnvTest, CorruptReadsFlipBitsOnlyOnMatchingPaths) {
  FaultInjectionEnv env;
  std::string payload(256, 'Z');
  ASSERT_TRUE(WriteString(&env, Path("victim.dat"), payload).ok());
  ASSERT_TRUE(WriteString(&env, Path("other.dat"), payload).ok());
  env.CorruptReadsMatching("victim");
  EXPECT_NE(ReadString(&env, Path("victim.dat")), payload);
  EXPECT_EQ(ReadString(&env, Path("other.dat")), payload);
}

TEST_F(EnvTest, PreExistingBytesSurviveCrash) {
  // Data written before this env existed counts as synced: a crash only
  // drops what was appended (and not synced) through the injection env.
  ASSERT_TRUE(WriteString(Env::Default(), Path("f"), "old-synced").ok());
  FaultInjectionEnv env;
  auto file = env.NewWritableFile(Path("f"), WritableFileOptions{});
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(Slice(std::string("-new-unsynced"))).ok());
  env.SimulateCrash();
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadString(Env::Default(), Path("f")).substr(0, 10), "old-synced");
  auto size = Env::Default()->GetFileSize(Path("f"));
  ASSERT_TRUE(size.ok());
  EXPECT_LT(*size, 10u + 13u);
}

}  // namespace
}  // namespace sqlledger
