// Schema evolution tests (paper §3.5): add nullable column, drop column,
// drop table (rename + hide), alter column type — all while keeping the
// ledger verifiable.

#include <gtest/gtest.h>

#include "ledger/verifier.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class SchemaChangesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenTestDb(/*block_size=*/100);
    ASSERT_TRUE(db_->CreateTable("accounts", AccountSchema(),
                                 TableKind::kUpdateable)
                    .ok());
    for (int i = 0; i < 5; i++) {
      auto txn = db_->Begin("app");
      ASSERT_TRUE(db_->Insert(*txn, "accounts",
                              {VS("acct" + std::to_string(i)), VB(i * 10)})
                      .ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
  }

  void ExpectVerifies() {
    auto digest = db_->GenerateDigest();
    ASSERT_TRUE(digest.ok());
    auto report = VerifyLedger(db_.get(), {*digest});
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok()) << report->Summary();
  }

  std::unique_ptr<LedgerDatabase> db_;
};

TEST_F(SchemaChangesTest, AddColumnKeepsOldHashesValid) {
  auto digest_before = db_->GenerateDigest();
  ASSERT_TRUE(digest_before.ok());
  ASSERT_TRUE(
      db_->AddColumn("accounts", "email", DataType::kVarchar, 64).ok());

  // Old digest still verifies: NULLs in the new column do not contribute.
  auto report = VerifyLedger(db_.get(), {*digest_before});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();

  // New rows can populate the column; everything still verifies.
  auto txn = db_->Begin("app");
  ASSERT_TRUE(db_->Insert(*txn, "accounts",
                          {VS("withmail"), VB(1), VS("a@b.c")})
                  .ok());
  ASSERT_TRUE(
      db_->Update(*txn, "accounts", {VS("acct0"), VB(0), VS("x@y.z")}).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  ExpectVerifies();

  // Reads expose the new column.
  auto txn2 = db_->Begin("app");
  auto row = db_->Get(*txn2, "accounts", {VS("acct1")});
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(row->size(), 3u);
  EXPECT_TRUE((*row)[2].is_null());
  ASSERT_TRUE(db_->Commit(*txn2).ok());
}

TEST_F(SchemaChangesTest, AddColumnRejectsDuplicates) {
  ASSERT_TRUE(db_->AddColumn("accounts", "email", DataType::kVarchar).ok());
  EXPECT_EQ(db_->AddColumn("accounts", "email", DataType::kVarchar).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(
      db_->AddColumn("missing", "x", DataType::kInt).IsNotFound());
}

TEST_F(SchemaChangesTest, DropColumnHidesButKeepsData) {
  ASSERT_TRUE(db_->AddColumn("accounts", "note", DataType::kVarchar).ok());
  auto txn = db_->Begin("app");
  ASSERT_TRUE(
      db_->Update(*txn, "accounts", {VS("acct0"), VB(0), VS("secret")}).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());

  ASSERT_TRUE(db_->DropColumn("accounts", "note").ok());

  // Invisible to the application...
  auto txn2 = db_->Begin("app");
  auto row = db_->Get(*txn2, "accounts", {VS("acct0")});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->size(), 2u);
  // ...but new inserts work, and the historical hash of the version that
  // carried "secret" still verifies (the dropped value still serializes).
  ASSERT_TRUE(db_->Insert(*txn2, "accounts", {VS("new"), VB(9)}).ok());
  ASSERT_TRUE(db_->Commit(*txn2).ok());
  ExpectVerifies();
}

TEST_F(SchemaChangesTest, DropColumnRestrictions) {
  EXPECT_EQ(db_->DropColumn("accounts", "name").code(),
            StatusCode::kInvalidArgument);  // primary key
  EXPECT_TRUE(db_->DropColumn("accounts", "nope").IsNotFound());
}

TEST_F(SchemaChangesTest, ReAddColumnAfterDropGetsFreshColumnId) {
  ASSERT_TRUE(db_->AddColumn("accounts", "tag", DataType::kInt).ok());
  ASSERT_TRUE(db_->DropColumn("accounts", "tag").ok());
  ASSERT_TRUE(db_->AddColumn("accounts", "tag", DataType::kInt).ok());
  auto ref = db_->GetTableRef("accounts");
  // Two physical columns named "tag": one dropped, one live, distinct ids.
  int live = ref->main->schema().FindColumn("tag");
  ASSERT_GE(live, 0);
  int dropped_count = 0;
  for (const ColumnDef& col : ref->main->schema().columns()) {
    if (col.name == "tag" && col.dropped) dropped_count++;
  }
  EXPECT_EQ(dropped_count, 1);
  ExpectVerifies();
}

TEST_F(SchemaChangesTest, DropTableRenamesAndStaysVerifiable) {
  ASSERT_TRUE(db_->DropTable("accounts").ok());
  EXPECT_TRUE(db_->GetTableRef("accounts").status().IsNotFound());

  // The dropped table's data is still verified (by object id).
  ExpectVerifies();

  // A new table with the same name gets a new id (Figure 6 scenario).
  ASSERT_TRUE(db_->CreateTable("accounts", AccountSchema(),
                               TableKind::kUpdateable)
                  .ok());
  auto ops = db_->GetTableOperationsView();
  ASSERT_TRUE(ops.ok());
  int creates = 0, drops = 0;
  for (const TableOperationRow& op : *ops) {
    if (op.operation == "CREATE" && op.table_name == "accounts") creates++;
    if (op.operation == "DROP") drops++;
  }
  EXPECT_EQ(creates, 2);
  EXPECT_EQ(drops, 1);
  ExpectVerifies();
}

TEST_F(SchemaChangesTest, DropTableStillDetectsTampering) {
  ASSERT_TRUE(db_->DropTable("accounts").ok());
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());

  // Tampering with a dropped table's data must still be detected.
  for (CatalogEntry* entry : db_->AllTables()) {
    if (entry->name.rfind("DroppedTable_accounts", 0) == 0) {
      Row* row = entry->main->mutable_clustered()->MutableGet({VS("acct2")});
      ASSERT_NE(row, nullptr);
      (*row)[1] = VB(777777);
    }
  }
  auto report = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST_F(SchemaChangesTest, AlterColumnTypeConvertsAndVerifies) {
  ASSERT_TRUE(
      db_->AlterColumnType("accounts", "balance", DataType::kVarchar).ok());

  auto txn = db_->Begin("app");
  auto row = db_->Get(*txn, "accounts", {VS("acct3")});
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(row->size(), 2u);
  EXPECT_EQ((*row)[1].type(), DataType::kVarchar);
  EXPECT_EQ((*row)[1].string_value(), "30");
  ASSERT_TRUE(db_->Commit(*txn).ok());

  // Every converted version was hashed through the ledger: verify.
  ExpectVerifies();

  // History holds the pre-conversion versions (one per row).
  auto ref = db_->GetTableRef("accounts");
  EXPECT_GE(ref->history->row_count(), 5u);
}

TEST_F(SchemaChangesTest, AlterColumnTypeNoOpWhenSame) {
  ASSERT_TRUE(
      db_->AlterColumnType("accounts", "balance", DataType::kBigInt).ok());
  auto ref = db_->GetTableRef("accounts");
  EXPECT_EQ(ref->history->row_count(), 0u);  // nothing converted
}

TEST_F(SchemaChangesTest, AlterColumnTypeRestrictions) {
  EXPECT_EQ(db_->AlterColumnType("accounts", "name", DataType::kInt).code(),
            StatusCode::kInvalidArgument);  // primary key
  EXPECT_TRUE(
      db_->AlterColumnType("accounts", "nope", DataType::kInt).IsNotFound());
}

TEST_F(SchemaChangesTest, IndexLifecycle) {
  ASSERT_TRUE(
      db_->CreateIndex("accounts", "by_balance", {"balance"}, false).ok());
  EXPECT_EQ(
      db_->CreateIndex("accounts", "by_balance", {"balance"}, false).code(),
      StatusCode::kAlreadyExists);
  EXPECT_TRUE(
      db_->CreateIndex("accounts", "bad", {"nope"}, false).IsNotFound());
  ExpectVerifies();
  ASSERT_TRUE(db_->DropIndex("accounts", "by_balance").ok());
  EXPECT_TRUE(db_->DropIndex("accounts", "by_balance").IsNotFound());
  ExpectVerifies();
}

TEST_F(SchemaChangesTest, ColumnMetadataRecordedInLedger) {
  ASSERT_TRUE(db_->AddColumn("accounts", "email", DataType::kVarchar).ok());
  auto view = db_->GetLedgerView("sys_ledger_columns");
  ASSERT_TRUE(view.ok());
  bool found = false;
  for (const LedgerViewRow& row : *view) {
    if (row.values[2].string_value() == "email") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sqlledger
