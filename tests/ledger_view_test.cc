// Ledger view tests, reproducing the paper's Figure 2 scenario exactly:
// account balances with inserts, an update and a delete.

#include <gtest/gtest.h>

#include "ledger/ledger_view.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class LedgerViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenTestDb(/*block_size=*/100);
    ASSERT_TRUE(db_->CreateTable("accounts", AccountSchema(),
                                 TableKind::kUpdateable)
                    .ok());
  }

  uint64_t Run(std::function<Status(Transaction*)> body) {
    auto txn = db_->Begin("app");
    EXPECT_TRUE(txn.ok());
    uint64_t id = (*txn)->id();
    Status st = body(*txn);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_TRUE(db_->Commit(*txn).ok());
    return id;
  }

  std::unique_ptr<LedgerDatabase> db_;
};

TEST_F(LedgerViewTest, Figure2Scenario) {
  // INSERT Nick $50; INSERT John $500; INSERT Joe $30; INSERT Mary $200;
  // UPDATE Nick -> $100 (DELETE $50 + INSERT $100); DELETE Joe.
  uint64_t t_nick = Run([&](Transaction* txn) {
    return db_->Insert(txn, "accounts", {VS("Nick"), VB(50)});
  });
  uint64_t t_john = Run([&](Transaction* txn) {
    return db_->Insert(txn, "accounts", {VS("John"), VB(500)});
  });
  uint64_t t_joe = Run([&](Transaction* txn) {
    return db_->Insert(txn, "accounts", {VS("Joe"), VB(30)});
  });
  Run([&](Transaction* txn) {
    return db_->Insert(txn, "accounts", {VS("Mary"), VB(200)});
  });
  uint64_t t_update = Run([&](Transaction* txn) {
    return db_->Update(txn, "accounts", {VS("Nick"), VB(100)});
  });
  uint64_t t_delete = Run([&](Transaction* txn) {
    return db_->Delete(txn, "accounts", {VS("Joe")});
  });

  auto view = db_->GetLedgerView("accounts");
  ASSERT_TRUE(view.ok());
  // 4 inserts + update (delete+insert) + delete = 7 operations.
  ASSERT_EQ(view->size(), 7u);

  // View is ordered by transaction; check the interesting rows.
  auto find = [&](uint64_t txn, const std::string& op) -> const LedgerViewRow* {
    for (const LedgerViewRow& row : *view) {
      if (row.transaction_id == txn && row.operation == op) return &row;
    }
    return nullptr;
  };

  const LedgerViewRow* nick_insert = find(t_nick, "INSERT");
  ASSERT_NE(nick_insert, nullptr);
  EXPECT_EQ(nick_insert->values[0].string_value(), "Nick");
  EXPECT_EQ(nick_insert->values[1].AsInt64(), 50);

  ASSERT_NE(find(t_john, "INSERT"), nullptr);
  ASSERT_NE(find(t_joe, "INSERT"), nullptr);

  // The update shows as DELETE of $50 and INSERT of $100, same txn.
  const LedgerViewRow* upd_delete = find(t_update, "DELETE");
  ASSERT_NE(upd_delete, nullptr);
  EXPECT_EQ(upd_delete->values[1].AsInt64(), 50);
  const LedgerViewRow* upd_insert = find(t_update, "INSERT");
  ASSERT_NE(upd_insert, nullptr);
  EXPECT_EQ(upd_insert->values[1].AsInt64(), 100);
  // Within the txn, the DELETE precedes the INSERT (sequence order).
  EXPECT_LT(upd_delete->sequence_number, upd_insert->sequence_number);

  const LedgerViewRow* joe_delete = find(t_delete, "DELETE");
  ASSERT_NE(joe_delete, nullptr);
  EXPECT_EQ(joe_delete->values[0].string_value(), "Joe");
  EXPECT_EQ(joe_delete->values[1].AsInt64(), 30);
}

TEST_F(LedgerViewTest, ViewOrderedByTransaction) {
  for (int i = 0; i < 10; i++) {
    Run([&](Transaction* txn) {
      return db_->Insert(txn, "accounts",
                         {VS("acct" + std::to_string(i)), VB(i)});
    });
  }
  auto view = db_->GetLedgerView("accounts");
  ASSERT_TRUE(view.ok());
  for (size_t i = 1; i < view->size(); i++) {
    EXPECT_LE((*view)[i - 1].transaction_id, (*view)[i].transaction_id);
  }
}

TEST_F(LedgerViewTest, RegularTableHasNoView) {
  ASSERT_TRUE(
      db_->CreateTable("plain", SimpleUserSchema(), TableKind::kRegular).ok());
  EXPECT_FALSE(db_->GetLedgerView("plain").ok());
  EXPECT_TRUE(db_->GetLedgerView("missing").status().IsNotFound());
}

TEST_F(LedgerViewTest, AppendOnlyViewListsInserts) {
  ASSERT_TRUE(
      db_->CreateTable("audit", SimpleUserSchema(), TableKind::kAppendOnly)
          .ok());
  for (int64_t i = 0; i < 3; i++) {
    Run([&](Transaction* txn) {
      return db_->Insert(txn, "audit", {VB(i), VS("event")});
    });
  }
  auto view = db_->GetLedgerView("audit");
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->size(), 3u);
  for (const LedgerViewRow& row : *view) EXPECT_EQ(row.operation, "INSERT");
}

TEST_F(LedgerViewTest, FormatProducesHeaderAndRows) {
  Run([&](Transaction* txn) {
    return db_->Insert(txn, "accounts", {VS("Nick"), VB(50)});
  });
  auto ref = db_->GetTableRef("accounts");
  auto view = db_->GetLedgerView("accounts");
  ASSERT_TRUE(view.ok());
  std::string text = FormatLedgerView(ref->main->schema(), *view);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("Operation"), std::string::npos);
  EXPECT_NE(text.find("'Nick'"), std::string::npos);
  EXPECT_NE(text.find("INSERT"), std::string::npos);
}

TEST_F(LedgerViewTest, TableOperationsViewShowsCreates) {
  auto ops = db_->GetTableOperationsView();
  ASSERT_TRUE(ops.ok());
  bool found_accounts = false;
  for (const TableOperationRow& op : *ops) {
    if (op.table_name == "accounts") {
      EXPECT_EQ(op.operation, "CREATE");
      found_accounts = true;
    }
  }
  EXPECT_TRUE(found_accounts);
}

TEST_F(LedgerViewTest, TableOperationsViewShowsDrops) {
  ASSERT_TRUE(db_->DropTable("accounts").ok());
  auto ops = db_->GetTableOperationsView();
  ASSERT_TRUE(ops.ok());
  bool found_create = false, found_drop = false;
  for (const TableOperationRow& op : *ops) {
    if (op.table_name == "accounts" && op.operation == "CREATE")
      found_create = true;
    if (op.table_name.rfind("DroppedTable_accounts", 0) == 0 &&
        op.operation == "DROP")
      found_drop = true;
  }
  EXPECT_TRUE(found_create);
  EXPECT_TRUE(found_drop);
}

}  // namespace
}  // namespace sqlledger
