// Tamper-detection tests: simulate the storage-level attacker of the
// paper's threat model (§2.5.2) — full control, mutating table stores
// directly below the database API — and check that verification catches
// every attack class with the right invariant.

#include <gtest/gtest.h>

#include "ledger/verifier.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class TamperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenTestDb(/*block_size=*/4);
    ASSERT_TRUE(db_->CreateTable("accounts", AccountSchema(),
                                 TableKind::kUpdateable)
                    .ok());
    // Secondary index so invariant 5 has something to verify.
    ASSERT_TRUE(
        db_->CreateIndex("accounts", "by_balance", {"balance"}, false).ok());
    for (int i = 0; i < 8; i++) {
      auto txn = db_->Begin("app");
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(db_->Insert(*txn, "accounts",
                              {VS("acct" + std::to_string(i)), VB(i * 100)})
                      .ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
    // Update a few rows so the history table has content.
    for (int i = 0; i < 3; i++) {
      auto txn = db_->Begin("app");
      ASSERT_TRUE(db_->Update(*txn, "accounts",
                              {VS("acct" + std::to_string(i)), VB(i * 100 + 5)})
                      .ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
    auto digest = db_->GenerateDigest();
    ASSERT_TRUE(digest.ok());
    digest_ = *digest;
  }

  /// Returns the violations of a full verification.
  std::vector<Violation> Verify() {
    auto report = VerifyLedger(db_.get(), {digest_});
    EXPECT_TRUE(report.ok());
    return report->violations;
  }

  bool HasInvariant(const std::vector<Violation>& violations, int invariant) {
    for (const Violation& v : violations) {
      if (v.invariant == invariant) return true;
    }
    return false;
  }

  std::unique_ptr<LedgerDatabase> db_;
  DatabaseDigest digest_;
};

TEST_F(TamperTest, BaselineIsClean) { EXPECT_TRUE(Verify().empty()); }

TEST_F(TamperTest, LiveValueEditDetected) {
  TableStore* store = db_->GetStoreForTesting("accounts");
  Row* row = store->mutable_clustered()->MutableGet({VS("acct5")});
  ASSERT_NE(row, nullptr);
  (*row)[1] = VB(999999);  // the attacker gives acct5 a fortune
  auto violations = Verify();
  EXPECT_TRUE(HasInvariant(violations, 4));
}

TEST_F(TamperTest, HistoryEditDetected) {
  // Rewriting history: change a retired version's balance.
  TableStore* history = db_->GetStoreForTesting("accounts", /*history=*/true);
  ASSERT_GT(history->row_count(), 0u);
  BTree::Iterator it = history->Scan();
  KeyTuple key = it.key();
  Row* row = history->mutable_clustered()->MutableGet(key);
  ASSERT_NE(row, nullptr);
  (*row)[1] = VB(31337);
  EXPECT_TRUE(HasInvariant(Verify(), 4));
}

TEST_F(TamperTest, RowDeletionDetected) {
  TableStore* store = db_->GetStoreForTesting("accounts");
  ASSERT_TRUE(store->Delete({VS("acct6")}).ok());
  EXPECT_TRUE(HasInvariant(Verify(), 4));
}

TEST_F(TamperTest, HistoryRowDeletionDetected) {
  // Erasing the trace of an update.
  TableStore* history = db_->GetStoreForTesting("accounts", true);
  BTree::Iterator it = history->Scan();
  KeyTuple key = it.key();
  ASSERT_TRUE(history->Delete(key).ok());
  EXPECT_TRUE(HasInvariant(Verify(), 4));
}

TEST_F(TamperTest, ForeignRowInsertionDetected) {
  // Injecting a row attributed to a nonexistent transaction.
  auto ref = db_->GetTableRef("accounts");
  Row forged = *ref->main->Get({VS("acct1")});
  forged[0] = VS("ghost");
  forged[ref->start_txn_ord] = VB(424242);  // no such transaction
  ASSERT_TRUE(ref->main->Insert(forged).ok());
  EXPECT_TRUE(HasInvariant(Verify(), 4));
}

TEST_F(TamperTest, SystemColumnRetargetingDetected) {
  // Re-attributing a row to a different (existing) transaction.
  auto ref = db_->GetTableRef("accounts");
  Row* a = ref->main->mutable_clustered()->MutableGet({VS("acct6")});
  Row* b = ref->main->mutable_clustered()->MutableGet({VS("acct7")});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  std::swap((*a)[ref->start_txn_ord], (*b)[ref->start_txn_ord]);
  EXPECT_TRUE(HasInvariant(Verify(), 4));
}

TEST_F(TamperTest, TransactionEntryEditDetected) {
  // A sophisticated attacker edits a row AND re-records a matching Merkle
  // root in the transaction entry. The forged entry's leaf hash changes,
  // so the block's transactions root no longer matches (invariant 3).
  ASSERT_TRUE(db_->database_ledger()->DrainQueue().ok());
  auto entries = db_->database_ledger()->AllEntries();
  TransactionEntry victim;
  bool found = false;
  for (const TransactionEntry& e : entries) {
    if (!e.table_roots.empty()) {
      victim = e;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  victim.table_roots[0].second.bytes[0] ^= 1;
  TableStore* txns =
      db_->database_ledger()->transactions_table_for_testing();
  ASSERT_TRUE(txns->Update(TransactionEntryToRow(victim)).ok());
  auto violations = Verify();
  EXPECT_TRUE(HasInvariant(violations, 3));
  EXPECT_TRUE(HasInvariant(violations, 4));  // root no longer matches rows
}

TEST_F(TamperTest, TransactionEntryDeletionDetected) {
  ASSERT_TRUE(db_->database_ledger()->DrainQueue().ok());
  auto entries = db_->database_ledger()->AllEntries();
  TransactionEntry victim;
  for (const TransactionEntry& e : entries) {
    if (!e.table_roots.empty()) {
      victim = e;
      break;
    }
  }
  TableStore* txns =
      db_->database_ledger()->transactions_table_for_testing();
  ASSERT_TRUE(
      txns->Delete({VB(static_cast<int64_t>(victim.txn_id))}).ok());
  auto violations = Verify();
  EXPECT_TRUE(HasInvariant(violations, 3));  // block root mismatch
  EXPECT_TRUE(HasInvariant(violations, 4));  // rows reference unknown txn
}

TEST_F(TamperTest, BlockEditDetected) {
  // Rewriting a closed block breaks the digest check and the chain.
  TableStore* blocks = db_->database_ledger()->blocks_table_for_testing();
  auto block = db_->database_ledger()->FindBlock(digest_.block_id);
  ASSERT_TRUE(block.ok());
  BlockRecord forged = *block;
  forged.transactions_root.bytes[7] ^= 1;
  ASSERT_TRUE(blocks->Update(BlockRecordToRow(forged)).ok());
  auto violations = Verify();
  EXPECT_TRUE(HasInvariant(violations, 1));  // digest mismatch
  EXPECT_TRUE(HasInvariant(violations, 3));  // entries no longer match root
}

TEST_F(TamperTest, BlockChainLinkTamperDetected) {
  // Forge an earlier block's prev pointer: breaks the chain (invariant 2).
  ASSERT_GE(db_->database_ledger()->closed_block_count(), 2u);
  TableStore* blocks = db_->database_ledger()->blocks_table_for_testing();
  auto block1 = db_->database_ledger()->FindBlock(1);
  ASSERT_TRUE(block1.ok());
  BlockRecord forged = *block1;
  forged.previous_block_hash.bytes[0] ^= 1;
  ASSERT_TRUE(blocks->Update(BlockRecordToRow(forged)).ok());
  auto violations = Verify();
  EXPECT_TRUE(HasInvariant(violations, 2));
}

TEST_F(TamperTest, BlockDeletionDetected) {
  TableStore* blocks = db_->database_ledger()->blocks_table_for_testing();
  ASSERT_TRUE(blocks->Delete({VB(0)}).ok());
  auto violations = Verify();
  EXPECT_FALSE(violations.empty());
  EXPECT_TRUE(HasInvariant(violations, 3));  // entries reference missing block
}

TEST_F(TamperTest, IndexTamperDetected) {
  // Tamper with a non-clustered index entry only: base table untouched, so
  // queries through the index would lie. Invariant 5 catches it.
  TableStore* store = db_->GetStoreForTesting("accounts");
  SecondaryIndex* index = store->FindIndex("by_balance");
  ASSERT_NE(index, nullptr);
  BTree::Iterator it = index->tree.Begin();
  ASSERT_TRUE(it.Valid());
  KeyTuple old_key = it.key();
  Row value = it.value();
  ASSERT_TRUE(index->tree.Delete(old_key).ok());
  KeyTuple forged_key = old_key;
  forged_key[0] = VB(123456789);
  index->tree.Upsert(forged_key, value);
  EXPECT_TRUE(HasInvariant(Verify(), 5));
}

TEST_F(TamperTest, IndexEntryDeletionDetected) {
  TableStore* store = db_->GetStoreForTesting("accounts");
  SecondaryIndex* index = store->FindIndex("by_balance");
  BTree::Iterator it = index->tree.Begin();
  ASSERT_TRUE(index->tree.Delete(it.key()).ok());
  EXPECT_TRUE(HasInvariant(Verify(), 5));
}

TEST_F(TamperTest, ColumnTypeSwapDetected) {
  // The §3.2 metadata attack: flip a column's declared type. The stored
  // bytes stay, interpretation changes, and the recomputed hashes differ.
  auto ref = db_->GetTableRef("accounts");
  int ord = ref->main->schema().FindColumn("balance");
  ASSERT_GE(ord, 0);
  ref->main->mutable_schema()->mutable_column(ord)->type = DataType::kInt;
  // Convert stored values so the table stays self-consistent (the attacker
  // is thorough) — hashes must still mismatch via the type id.
  std::vector<KeyTuple> keys;
  for (BTree::Iterator it = ref->main->Scan(); it.Valid(); it.Next())
    keys.push_back(it.key());
  for (const KeyTuple& key : keys) {
    Row* row = ref->main->mutable_clustered()->MutableGet(key);
    (*row)[ord] = Value::Int(static_cast<int32_t>((*row)[ord].AsInt64()));
  }
  EXPECT_TRUE(HasInvariant(Verify(), 4));
}

TEST_F(TamperTest, TamperingAfterDigestInOpenBlockStillDetected) {
  // Data written after the last digest is only consistency-checked, but
  // editing it without fixing the transaction entry still trips invariant 4.
  auto txn = db_->Begin("app");
  ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS("fresh"), VB(1)}).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  auto ref = db_->GetTableRef("accounts");
  Row* row = ref->main->mutable_clustered()->MutableGet({VS("fresh")});
  (*row)[1] = VB(100000);
  EXPECT_TRUE(HasInvariant(Verify(), 4));
}

TEST_F(TamperTest, LedgerViewCountMismatchDetected) {
  // Stuff a version into history with NULL start (breaks the view's
  // one-INSERT-per-version shape) — caught by the view definition check
  // or invariant 4.
  auto ref = db_->GetTableRef("accounts");
  BTree::Iterator it = ref->history->Scan();
  Row forged = it.value();
  forged[ref->start_txn_ord] = Value::Null(DataType::kBigInt);
  forged[ref->end_txn_ord] = VB(77);
  forged[ref->end_seq_ord] = VB(12345);
  ASSERT_TRUE(ref->history->Insert(forged).ok());
  auto violations = Verify();
  EXPECT_FALSE(violations.empty());
}

}  // namespace
}  // namespace sqlledger
