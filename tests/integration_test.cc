// End-to-end integration tests spanning the full stack: the Contoso
// forward-integrity scenario of the paper's §2.5.1, durable databases with
// digest stores, and recovery-from-tampering (§3.7).

#include <gtest/gtest.h>

#include "ledger/digest_store.h"
#include "ledger/receipt.h"
#include "ledger/truncation.h"
#include "ledger/verifier.h"
#include "test_util.h"
#include "workload/tpcc.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class IntegrationTest : public TempDirTest {};

// The paper's §2.5.1 story: Contoso tracks manufactured parts; after a
// lawsuit, an insider tampers with which batch a part came from; the
// externally stored digests expose the tampering.
TEST_F(IntegrationTest, ContosoForwardIntegrity) {
  LedgerDatabaseOptions options;
  options.data_dir = Path("contoso");
  options.database_id = "contoso-parts";
  options.block_size = 8;
  auto db_result = LedgerDatabase::Open(std::move(options));
  ASSERT_TRUE(db_result.ok());
  auto db = std::move(*db_result);

  Schema parts;
  parts.AddColumn("part_id", DataType::kBigInt, false);
  parts.AddColumn("batch", DataType::kVarchar, false, 16);
  parts.AddColumn("car_vin", DataType::kVarchar, true, 20);
  parts.SetPrimaryKey({0});
  ASSERT_TRUE(db->CreateTable("parts", parts, TableKind::kUpdateable).ok());

  auto store = ImmutableBlobDigestStore::Open(Path("trusted_digests"));
  ASSERT_TRUE(store.ok());

  // 2018: honest operation — parts manufactured and installed.
  for (int i = 0; i < 20; i++) {
    auto txn = db->Begin("factory");
    ASSERT_TRUE(txn.ok());
    std::string batch = i < 10 ? "BATCH-GOOD" : "BATCH-RECALLED";
    ASSERT_TRUE(db->Insert(*txn, "parts",
                           {VB(i), VS(batch), VS("VIN" + std::to_string(i))})
                    .ok());
    ASSERT_TRUE(db->Commit(*txn).ok());
    // Digests uploaded every few transactions (paper: every few seconds).
    if (i % 5 == 4) {
      ASSERT_TRUE(GenerateAndUploadDigest(db.get(), store->get()).ok());
    }
  }
  ASSERT_TRUE(GenerateAndUploadDigest(db.get(), store->get()).ok());

  // 2020: the lawsuit — Bob's car used part 15 (BATCH-RECALLED). An insider
  // edits the row at the storage layer to claim it was a good batch.
  TableStore* parts_store = db->GetStoreForTesting("parts");
  Row* row = parts_store->mutable_clustered()->MutableGet({VB(15)});
  ASSERT_NE(row, nullptr);
  (*row)[1] = VS("BATCH-GOOD");

  // The audit: verification against the externally stored digests.
  auto digests = (*store)->ListAll();
  ASSERT_TRUE(digests.ok());
  ASSERT_GE(digests->size(), 5u);
  auto report = VerifyLedger(db.get(), *digests);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());  // tampering exposed
  bool mentions_parts = false;
  for (const Violation& v : report->violations) {
    if (v.message.find("parts") != std::string::npos) mentions_parts = true;
  }
  EXPECT_TRUE(mentions_parts);
}

// Recovery from tampering (paper §3.7): restore a verified backup and
// repair, digests stay valid because the chain never forked.
TEST_F(IntegrationTest, RecoverFromTamperingViaBackup) {
  LedgerDatabaseOptions options;
  options.data_dir = Path("db");
  options.database_id = "prod";
  options.block_size = 4;
  auto db_result = LedgerDatabase::Open(std::move(options));
  ASSERT_TRUE(db_result.ok());
  auto db = std::move(*db_result);

  ASSERT_TRUE(db->CreateTable("accounts", AccountSchema(),
                              TableKind::kUpdateable)
                  .ok());
  InMemoryDigestStore store;
  for (int i = 0; i < 6; i++) {
    auto txn = db->Begin("app");
    ASSERT_TRUE(db->Insert(*txn, "accounts",
                           {VS("acct" + std::to_string(i)), VB(i * 100)})
                    .ok());
    ASSERT_TRUE(db->Commit(*txn).ok());
  }
  ASSERT_TRUE(GenerateAndUploadDigest(db.get(), &store).ok());
  ASSERT_TRUE(db->Checkpoint().ok());

  // "Backup": copy the data directory while it verifies.
  db.reset();
  std::filesystem::copy(Path("db"), Path("backup"),
                        std::filesystem::copy_options::recursive);

  // Attack the live database (first-category data: no future transactions
  // depend on it).
  LedgerDatabaseOptions reopen;
  reopen.data_dir = Path("db");
  reopen.database_id = "prod";
  reopen.block_size = 4;
  auto live = LedgerDatabase::Open(std::move(reopen));
  ASSERT_TRUE(live.ok());
  TableStore* accounts = (*live)->GetStoreForTesting("accounts");
  Row* row = accounts->mutable_clustered()->MutableGet({VS("acct2")});
  (*row)[1] = VB(999999);
  auto digests = store.ListAll();
  auto report = VerifyLedger(live->get(), *digests);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->ok());  // attack detected

  // Restore the backup: it verifies, and the digest chain continues from
  // it without a fork.
  LedgerDatabaseOptions restore;
  restore.data_dir = Path("backup");
  restore.database_id = "prod";
  restore.block_size = 4;
  auto restored = LedgerDatabase::Open(std::move(restore));
  ASSERT_TRUE(restored.ok());
  report = VerifyLedger(restored->get(), *digests);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();

  // Business continues on the restored copy; new digests chain cleanly.
  auto txn = (*restored)->Begin("app");
  ASSERT_TRUE(
      (*restored)->Update(*txn, "accounts", {VS("acct2"), VB(200)}).ok());
  ASSERT_TRUE((*restored)->Commit(*txn).ok());
  ASSERT_TRUE(GenerateAndUploadDigest(restored->get(), &store).ok());
  report = VerifyLedger(restored->get(), *store.ListAll());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

// Full-stack soak: TPC-C traffic + digests + receipts + truncation +
// recovery, everything verifying at each stage.
TEST_F(IntegrationTest, FullLifecycleSoak) {
  LedgerDatabaseOptions options;
  options.data_dir = Path("soak");
  options.database_id = "soakdb";
  options.block_size = 32;
  auto db_result = LedgerDatabase::Open(std::move(options));
  ASSERT_TRUE(db_result.ok());
  auto db = std::move(*db_result);

  TpccConfig config;
  config.customers_per_district = 10;
  config.districts_per_warehouse = 4;
  TpccWorkload tpcc(db.get(), config);
  ASSERT_TRUE(tpcc.Setup().ok());

  InMemoryDigestStore store;
  Random rng(99);
  TpccStats stats;
  for (int round = 0; round < 4; round++) {
    for (int i = 0; i < 50; i++)
      ASSERT_TRUE(tpcc.RunTransaction(&rng, &stats).ok());
    ASSERT_TRUE(GenerateAndUploadDigest(db.get(), &store).ok());
  }
  EXPECT_GT(stats.committed, 150u);

  // Verify; issue a receipt for some ledger transaction.
  auto digests = store.ListAll();
  ASSERT_TRUE(digests.ok());
  auto report = VerifyLedger(db.get(), *digests);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();

  ASSERT_TRUE(db->database_ledger()->DrainQueue().ok());
  auto entries = db->database_ledger()->AllEntries();
  uint64_t receipt_txn = 0;
  for (const TransactionEntry& e : entries) {
    if (!e.table_roots.empty() && e.block_id < 1) receipt_txn = e.txn_id;
  }
  if (receipt_txn != 0) {
    auto receipt = MakeTransactionReceipt(db.get(), receipt_txn);
    ASSERT_TRUE(receipt.ok());
    EXPECT_TRUE(VerifyTransactionReceipt(*receipt, db->signer()));
  }

  // Truncate the first half of the chain and keep going.
  uint64_t cutoff = db->database_ledger()->open_block_id() / 2;
  if (cutoff > 0) {
    Status st = TruncateLedger(db.get(), cutoff, *digests);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  for (int i = 0; i < 50; i++)
    ASSERT_TRUE(tpcc.RunTransaction(&rng, &stats).ok());
  ASSERT_TRUE(GenerateAndUploadDigest(db.get(), &store).ok());

  // Crash + recover, then verify with the newest digest.
  ASSERT_TRUE(db->Checkpoint().ok());
  db.reset();
  LedgerDatabaseOptions reopen;
  reopen.data_dir = Path("soak");
  reopen.database_id = "soakdb";
  reopen.block_size = 32;
  auto recovered = LedgerDatabase::Open(std::move(reopen));
  ASSERT_TRUE(recovered.ok());
  auto latest = store.Latest("");
  ASSERT_TRUE(latest.ok());
  report = VerifyLedger(recovered->get(), {*latest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

}  // namespace
}  // namespace sqlledger
