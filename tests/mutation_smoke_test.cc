// Mutation smoke tests: a single-byte corruption must be (a) attributed
// precisely — the right invariant number and the right block — when it hits
// ledger state, and (b) survivable — recovery falls back to the previous
// generation — when it hits a checkpoint file on disk. Complements the
// broader tamper_fuzz_test, which asserts only *that* detection happens.

#include <gtest/gtest.h>

#include <fstream>

#include "ledger/verifier.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

// One flipped byte in a committed block's recorded transactions root must
// be pinned to invariant 3 *and* to that exact block, and reverting the
// byte must restore a clean report (the mutation, not some side effect, was
// what the verifier saw).
TEST(MutationSmoke, BlockByteFlipPinpointsInvariantAndBlock) {
  auto db = OpenTestDb(/*block_size=*/4);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  for (int i = 0; i < 12; i++)
    ASSERT_TRUE(InsertOne(db.get(), "t", i, "v" + std::to_string(i)).ok());
  auto digest = db->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  ASSERT_TRUE(db->database_ledger()->DrainQueue().ok());

  const uint64_t victim_block = 1;
  TableStore* blocks = db->database_ledger()->blocks_table_for_testing();
  Row* row = nullptr;
  for (BTree::Iterator it = blocks->Scan(); it.Valid(); it.Next()) {
    if (static_cast<uint64_t>(it.value()[0].AsInt64()) == victim_block) {
      row = blocks->mutable_clustered()->MutableGet(it.key());
      break;
    }
  }
  ASSERT_NE(row, nullptr);

  std::string roots = (*row)[2].string_value();  // transactions_root
  ASSERT_FALSE(roots.empty());
  std::vector<uint8_t> bytes(roots.begin(), roots.end());
  bytes[7] ^= 0x01;
  (*row)[2] = Value::Varbinary(bytes);

  auto report = VerifyLedger(db.get(), {*digest});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->ok());
  bool pinned = false;
  for (const Violation& v : report->violations) {
    if (v.invariant == 3 &&
        v.message.find("block " + std::to_string(victim_block)) !=
            std::string::npos)
      pinned = true;
    // The corruption sits in one block's root; nothing may be attributed to
    // row data (invariant 4) or indexes (invariant 5).
    EXPECT_LE(v.invariant, 3) << v.message;
  }
  EXPECT_TRUE(pinned) << report->Summary();

  bytes[7] ^= 0x01;
  (*row)[2] = Value::Varbinary(bytes);
  auto clean = VerifyLedger(db.get(), {*digest});
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->ok()) << clean->Summary();
}

// One flipped byte in the newest on-disk checkpoint: the CRC must reject
// the generation, recovery must fall back to the retained previous one plus
// the rotated WAL, and the recovered database must be complete and verify.
class CheckpointMutationTest : public TempDirTest {};

TEST_F(CheckpointMutationTest, TornCheckpointFallsBackAndVerifies) {
  LedgerDatabaseOptions options;
  options.data_dir = Path("db");
  options.database_id = "mutdb";
  options.block_size = 4;
  static int64_t clock = 1000000;
  options.clock = [] { return ++clock; };

  DatabaseDigest digest;
  {
    auto db = LedgerDatabase::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(
        (*db)->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable)
            .ok());
    for (int i = 0; i < 5; i++)
      ASSERT_TRUE(InsertOne(db->get(), "t", i, "first").ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());  // generation N-1
    for (int i = 5; i < 9; i++)
      ASSERT_TRUE(InsertOne(db->get(), "t", i, "second").ok());
    auto d = (*db)->GenerateDigest();
    ASSERT_TRUE(d.ok());
    digest = *d;
    ASSERT_TRUE((*db)->Checkpoint().ok());  // generation N, about to corrupt
  }

  const std::string path = Path("db") + "/checkpoint.sldb";
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(64);
    char byte = 0;
    f.seekg(64);
    f.get(byte);
    f.seekp(64);
    f.put(static_cast<char>(byte ^ 0x10));
  }

  auto db = LedgerDatabase::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto txn = (*db)->Begin("app");
  ASSERT_TRUE(txn.ok());
  auto rows = (*db)->Scan(*txn, "t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 9u);
  (*db)->Abort(*txn);

  auto report = VerifyLedger(db->get(), {digest});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
}

}  // namespace
}  // namespace sqlledger
