// Incremental verification tests (DESIGN.md §11). The core property: for
// any database state — clean or tampered — VerifyLedgerIncremental must
// return the exact violation set a from-scratch VerifyLedger returns,
// while skipping the row-version hashing of the already-verified prefix.
// Covered here:
//
//   - a randomized equivalence sweep (>= 20 seeds) interleaving commits,
//     digests and incremental verifies, diffing every report field against
//     a full verification of the same effective digest set;
//   - tamper placed before, at and after the watermark: the first two
//     force a fallback to full verification, the third is caught directly;
//   - the documented accumulator blind spot (content-only flip of a
//     verified row version), asserted explicitly as a divergence;
//   - stale and corrupt VerificationState files, which must be ignored or
//     fall back cleanly — never trusted, never an error;
//   - a crash at every sync point of the watermark save: recovery must
//     come back with a valid-or-absent watermark, never a torn one.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "ledger/verification_state.h"
#include "ledger/verifier.h"
#include "storage/env.h"
#include "test_util.h"
#include "util/random.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

/// Mirrors the anchor union VerifyLedgerIncremental performs (watermark
/// anchor + latest durable digest, both presence-filtered), so the full
/// comparison run verifies the identical effective digest set.
std::vector<DatabaseDigest> WithAnchors(LedgerDatabase* db,
                                        std::vector<DatabaseDigest> digests) {
  auto add = [&](const DatabaseDigest& d) {
    if (d.database_id != db->options().database_id) return;
    if (!db->database_ledger()->FindBlock(d.block_id).ok()) return;
    for (const DatabaseDigest& e : digests)
      if (e == d) return;
    digests.push_back(d);
  };
  auto state = db->GetVerificationState();
  if (state.has_value()) add(state->anchor);
  auto durable = db->latest_durable_digest();
  if (durable.has_value()) add(*durable);
  return digests;
}

/// Byte-identical verdicts plus the work-accounting identities from
/// DESIGN.md §11: the incremental run must account for exactly the work
/// the full run did — nothing double-counted, nothing dropped.
void ExpectEquivalent(const VerificationReport& full,
                      const VerificationReport& inc, const std::string& ctx) {
  ASSERT_EQ(full.violations.size(), inc.violations.size())
      << ctx << "\nfull: " << full.Summary() << "\ninc:  " << inc.Summary();
  for (size_t i = 0; i < full.violations.size(); i++) {
    EXPECT_EQ(full.violations[i].invariant, inc.violations[i].invariant)
        << ctx << " violation " << i;
    EXPECT_EQ(full.violations[i].message, inc.violations[i].message)
        << ctx << " violation " << i;
  }
  EXPECT_EQ(full.blocks_checked, inc.blocks_checked) << ctx;
  EXPECT_EQ(inc.blocks_skipped + inc.blocks_reverified, inc.blocks_checked)
      << ctx;
  EXPECT_EQ(full.row_versions_checked,
            inc.row_versions_checked + inc.row_versions_skipped)
      << ctx;
  EXPECT_EQ(full.transactions_checked, inc.transactions_checked) << ctx;
  EXPECT_EQ(full.has_digest_coverage, inc.has_digest_coverage) << ctx;
  EXPECT_EQ(full.highest_digest_block, inc.highest_digest_block) << ctx;
}

class IncrementalVerifierTest : public TempDirTest {
 protected:
  LedgerDatabaseOptions MakeOptions(const std::string& subdir,
                                    Env* env = nullptr) {
    LedgerDatabaseOptions options;
    options.data_dir = Path(subdir);
    options.database_id = "incdb";
    options.block_size = 3;
    options.sync_wal = true;
    options.env = env;
    options.clock = [this] { return ++clock_; };
    return options;
  }

  std::unique_ptr<LedgerDatabase> Open(const std::string& subdir,
                                       Env* env = nullptr) {
    auto db = LedgerDatabase::Open(MakeOptions(subdir, env));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return db.ok() ? std::move(*db) : nullptr;
  }

  /// Opens a database with an updateable "accounts" table and inserts
  /// accounts [0, n) in separate transactions (several blocks at
  /// block_size 3).
  std::unique_ptr<LedgerDatabase> OpenWithAccounts(const std::string& subdir,
                                                   int n) {
    auto db = Open(subdir);
    if (db == nullptr) return nullptr;
    EXPECT_TRUE(
        db->CreateTable("accounts", AccountSchema(), TableKind::kUpdateable)
            .ok());
    InsertAccounts(db.get(), n);
    return db;
  }

  void InsertAccounts(LedgerDatabase* db, int n) {
    for (int i = 0; i < n; i++) {
      auto txn = db->Begin("app");
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(db->Insert(*txn, "accounts",
                             {VS("acct" + std::to_string(next_acct_)),
                              VB(next_acct_)})
                      .ok());
      next_acct_++;
      ASSERT_TRUE(db->Commit(*txn).ok());
    }
  }

  /// Digest + incremental verify, asserting the run is clean. Seeds (or
  /// refreshes) the persisted watermark at the digest's block.
  DatabaseDigest SeedWatermark(LedgerDatabase* db,
                               std::vector<DatabaseDigest>* trusted) {
    auto digest = db->GenerateDigest();
    EXPECT_TRUE(digest.ok());
    trusted->push_back(*digest);
    auto inc = VerifyLedgerIncremental(db, *trusted);
    EXPECT_TRUE(inc.ok()) << inc.status().ToString();
    EXPECT_TRUE(inc->ok()) << inc->Summary();
    auto state = db->GetVerificationState();
    EXPECT_TRUE(state.has_value());
    if (state.has_value())
      EXPECT_EQ(state->last_verified_block, digest->block_id);
    return *digest;
  }

  int64_t clock_ = 1000000;
  int next_acct_ = 0;
};

// ---- Randomized equivalence sweep (the core property) ----

TEST_F(IncrementalVerifierTest, RandomizedEquivalenceSweep) {
  constexpr int kCases = 20;
  for (int c = 0; c < kCases; c++) {
    SCOPED_TRACE("case " + std::to_string(c) +
                 " (SQLLEDGER_TEST_SEED=" + std::to_string(TestSeed()) + ")");
    Random rng(TestCaseSeed(static_cast<uint64_t>(c)));
    std::string subdir = "eq" + std::to_string(c);
    auto db = Open(subdir);
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(
        db->CreateTable("accounts", AccountSchema(), TableKind::kUpdateable)
            .ok());
    ASSERT_TRUE(
        db->CreateTable("audit", SimpleUserSchema(), TableKind::kAppendOnly)
            .ok());

    std::vector<DatabaseDigest> trusted;
    std::vector<int64_t> live;
    int64_t next_key = 0;
    int64_t next_audit = 0;
    auto run_traffic = [&](int txns) {
      for (int t = 0; t < txns; t++) {
        auto txn = db->Begin("gen");
        ASSERT_TRUE(txn.ok());
        int stmts = 1 + static_cast<int>(rng.Uniform(3));
        for (int s = 0; s < stmts; s++) {
          if (live.empty() || rng.Bernoulli(0.55)) {
            int64_t k = next_key++;
            ASSERT_TRUE(db->Insert(*txn, "accounts",
                                   {VS("k" + std::to_string(k)), VB(k)})
                            .ok());
            live.push_back(k);
          } else if (rng.Bernoulli(0.6)) {
            int64_t k = live[rng.Uniform(live.size())];
            ASSERT_TRUE(
                db->Update(*txn, "accounts",
                           {VS("k" + std::to_string(k)),
                            VB(static_cast<int64_t>(rng.Uniform(1000)))})
                    .ok());
          } else {
            size_t at = rng.Uniform(live.size());
            int64_t k = live[at];
            ASSERT_TRUE(db->Delete(*txn, "accounts",
                                   {VS("k" + std::to_string(k))})
                            .ok());
            live.erase(live.begin() + static_cast<long>(at));
          }
          if (rng.Bernoulli(0.3)) {
            ASSERT_TRUE(db->Insert(*txn, "audit",
                                   {VB(next_audit++), VS(rng.AlphaString(6))})
                            .ok());
          }
        }
        ASSERT_TRUE(db->Commit(*txn).ok());
      }
    };

    int phases = 3 + static_cast<int>(rng.Uniform(3));
    for (int p = 0; p < phases; p++) {
      SCOPED_TRACE("phase " + std::to_string(p));
      run_traffic(1 + static_cast<int>(rng.Uniform(5)));
      if (rng.Bernoulli(0.7)) {
        auto digest = db->GenerateDigest();
        ASSERT_TRUE(digest.ok());
        trusted.push_back(*digest);
      }
      std::vector<DatabaseDigest> full_digests =
          WithAnchors(db.get(), trusted);
      auto inc = VerifyLedgerIncremental(db.get(), trusted);
      ASSERT_TRUE(inc.ok()) << inc.status().ToString();
      auto full = VerifyLedger(db.get(), full_digests);
      ASSERT_TRUE(full.ok()) << full.status().ToString();
      EXPECT_TRUE(inc->ok()) << inc->Summary();
      EXPECT_FALSE(inc->fell_back_to_full) << inc->fallback_reason;
      ExpectEquivalent(*full, *inc, "phase " + std::to_string(p));
    }

    // Guarantee a persisted watermark, then prove it survives a clean
    // close/reopen and still pays off: the reopened database skips the
    // prefix's row-version hashing while agreeing with a full run.
    run_traffic(1);
    auto digest = db->GenerateDigest();
    ASSERT_TRUE(digest.ok());
    trusted.push_back(*digest);
    auto seed_run = VerifyLedgerIncremental(db.get(), trusted);
    ASSERT_TRUE(seed_run.ok());
    ASSERT_TRUE(seed_run->ok()) << seed_run->Summary();
    db.reset();

    db = Open(subdir);
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(db->GetVerificationState().has_value());
    run_traffic(2);
    std::vector<DatabaseDigest> full_digests = WithAnchors(db.get(), trusted);
    auto inc = VerifyLedgerIncremental(db.get(), trusted);
    ASSERT_TRUE(inc.ok());
    auto full = VerifyLedger(db.get(), full_digests);
    ASSERT_TRUE(full.ok());
    EXPECT_TRUE(inc->ok()) << inc->Summary();
    EXPECT_FALSE(inc->fell_back_to_full) << inc->fallback_reason;
    EXPECT_EQ(inc->watermark_block, digest->block_id);
    EXPECT_GT(inc->blocks_skipped, 0u);
    EXPECT_GT(inc->row_versions_skipped, 0u);
    ExpectEquivalent(*full, *inc, "post-reopen");
  }
}

// ---- Deterministic skip accounting and stats ----

TEST_F(IncrementalVerifierTest, SeedsWatermarkAndSkipsVerifiedPrefix) {
  auto db = OpenWithAccounts("skip", 8);
  ASSERT_NE(db, nullptr);
  std::vector<DatabaseDigest> trusted;

  // First run has no watermark: everything is re-verified.
  auto d1 = db->GenerateDigest();
  ASSERT_TRUE(d1.ok());
  trusted.push_back(*d1);
  auto inc1 = VerifyLedgerIncremental(db.get(), trusted);
  ASSERT_TRUE(inc1.ok());
  EXPECT_TRUE(inc1->ok()) << inc1->Summary();
  EXPECT_TRUE(inc1->incremental);
  EXPECT_EQ(inc1->watermark_block, 0u);
  EXPECT_EQ(inc1->blocks_skipped, 0u);
  EXPECT_EQ(inc1->row_versions_skipped, 0u);
  EXPECT_EQ(inc1->blocks_reverified, inc1->blocks_checked);

  auto state = db->GetVerificationState();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->last_verified_block, d1->block_id);
  EXPECT_EQ(state->anchor, *d1);
  EXPECT_FALSE(state->tables.empty());

  // Second run resumes from d1's block and only hashes the delta.
  InsertAccounts(db.get(), 4);
  auto d2 = db->GenerateDigest();
  ASSERT_TRUE(d2.ok());
  trusted.push_back(*d2);
  auto full = VerifyLedger(db.get(), WithAnchors(db.get(), trusted));
  ASSERT_TRUE(full.ok());
  auto inc2 = VerifyLedgerIncremental(db.get(), trusted);
  ASSERT_TRUE(inc2.ok());
  EXPECT_TRUE(inc2->ok()) << inc2->Summary();
  EXPECT_FALSE(inc2->fell_back_to_full);
  EXPECT_EQ(inc2->watermark_block, d1->block_id);
  EXPECT_GT(inc2->blocks_skipped, 0u);
  EXPECT_GT(inc2->row_versions_skipped, 0u);
  EXPECT_LT(inc2->row_versions_checked, full->row_versions_checked);
  ExpectEquivalent(*full, *inc2, "second run");

  // The watermark advanced and the stats counters add up.
  state = db->GetVerificationState();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->last_verified_block, d2->block_id);
  DatabaseStats stats = db->GetStats();
  EXPECT_EQ(stats.incremental_verifications, 2u);
  EXPECT_EQ(stats.verification_fallbacks, 0u);
  EXPECT_EQ(stats.blocks_skipped, inc2->blocks_skipped);
  EXPECT_EQ(stats.row_versions_skipped, inc2->row_versions_skipped);
  EXPECT_EQ(stats.blocks_reverified,
            inc1->blocks_reverified + inc2->blocks_reverified);
}

TEST_F(IncrementalVerifierTest, SubsetVerificationDoesNotTouchWatermark) {
  auto db = OpenWithAccounts("subset", 6);
  ASSERT_NE(db, nullptr);
  std::vector<DatabaseDigest> trusted;
  SeedWatermark(db.get(), &trusted);
  auto before = db->GetVerificationState();
  ASSERT_TRUE(before.has_value());

  InsertAccounts(db.get(), 3);
  auto digest = db->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  trusted.push_back(*digest);
  VerificationOptions options;
  options.tables = {"accounts"};
  auto inc = VerifyLedgerIncremental(db.get(), trusted, options);
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(inc->ok()) << inc->Summary();

  // A table-filtered run cannot attest the whole database, so the
  // persisted watermark must be exactly what it was.
  auto after = db->GetVerificationState();
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(*before == *after);
}

// ---- Tamper placement: before, at and after the watermark ----

TEST_F(IncrementalVerifierTest, StructuralTamperBeforeWatermarkFallsBack) {
  auto db = OpenWithAccounts("tamper_before", 10);
  ASSERT_NE(db, nullptr);
  std::vector<DatabaseDigest> trusted;
  SeedWatermark(db.get(), &trusted);
  InsertAccounts(db.get(), 4);
  SeedWatermark(db.get(), &trusted);

  // Delete a live row whose only version predates the watermark: the
  // verified prefix loses a row version, which the per-table accumulator
  // must notice and turn into a full re-verification.
  TableStore* store = db->GetStoreForTesting("accounts");
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->Delete({VS("acct3")}).ok());

  auto full = VerifyLedger(db.get(), WithAnchors(db.get(), trusted));
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->ok());
  auto inc = VerifyLedgerIncremental(db.get(), trusted);
  ASSERT_TRUE(inc.ok());
  EXPECT_FALSE(inc->ok());
  EXPECT_TRUE(inc->fell_back_to_full);
  EXPECT_NE(inc->fallback_reason.find("accumulator"), std::string::npos)
      << inc->fallback_reason;
  ExpectEquivalent(*full, *inc, "deleted prefix row");

  DatabaseStats stats = db->GetStats();
  EXPECT_EQ(stats.verification_fallbacks, 1u);
}

TEST_F(IncrementalVerifierTest, EntryTamperBeforeWatermarkFallsBack) {
  auto db = OpenWithAccounts("tamper_entry", 10);
  ASSERT_NE(db, nullptr);
  std::vector<DatabaseDigest> trusted;
  SeedWatermark(db.get(), &trusted);
  InsertAccounts(db.get(), 4);
  DatabaseDigest d = SeedWatermark(db.get(), &trusted);

  // Rewrite the recorded user of a transaction deep inside the verified
  // prefix. No row version changes, so the per-table accumulators still
  // match and the prefix's block headers are untouched — only the
  // entry-content accumulator can notice the edit and force the fallback
  // (the full pass then pins it as a transactions-root mismatch).
  auto snapshot = db->database_ledger()->Snapshot();
  uint64_t victim = 0;
  for (const TransactionEntry& e : snapshot.entries)
    if (e.block_id < d.block_id) victim = e.txn_id;
  ASSERT_NE(victim, 0u);
  TableStore* txns = db->database_ledger()->transactions_table_for_testing();
  ASSERT_NE(txns, nullptr);
  Row* row = txns->mutable_clustered()->MutableGet(
      {VB(static_cast<int64_t>(victim))});
  ASSERT_NE(row, nullptr);
  (*row)[4] = Value::Varchar("mallory");

  auto full = VerifyLedger(db.get(), WithAnchors(db.get(), trusted));
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->ok());
  auto inc = VerifyLedgerIncremental(db.get(), trusted);
  ASSERT_TRUE(inc.ok());
  EXPECT_FALSE(inc->ok());
  EXPECT_TRUE(inc->fell_back_to_full);
  EXPECT_NE(inc->fallback_reason.find("transaction-entry accumulator"),
            std::string::npos)
      << inc->fallback_reason;
  ExpectEquivalent(*full, *inc, "rewritten prefix entry user");
}

TEST_F(IncrementalVerifierTest, BlockChainTamperBeforeWatermarkFallsBack) {
  auto db = OpenWithAccounts("tamper_chain", 10);
  ASSERT_NE(db, nullptr);
  std::vector<DatabaseDigest> trusted;
  DatabaseDigest d = SeedWatermark(db.get(), &trusted);
  ASSERT_GT(d.block_id, 1u);

  // Flip a byte of block 1's previous-block hash — deep inside the
  // verified prefix. The incremental pass always re-hashes block headers,
  // so the chain break surfaces immediately and forces the fallback.
  TableStore* blocks = db->database_ledger()->blocks_table_for_testing();
  ASSERT_NE(blocks, nullptr);
  Row* row = blocks->mutable_clustered()->MutableGet({VB(1)});
  ASSERT_NE(row, nullptr);
  std::vector<uint8_t> bytes((*row)[1].string_value().begin(),
                             (*row)[1].string_value().end());
  ASSERT_FALSE(bytes.empty());
  bytes[0] ^= 0x01;
  (*row)[1] = Value::Varbinary(std::move(bytes));

  auto full = VerifyLedger(db.get(), WithAnchors(db.get(), trusted));
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->ok());
  auto inc = VerifyLedgerIncremental(db.get(), trusted);
  ASSERT_TRUE(inc.ok());
  EXPECT_FALSE(inc->ok());
  EXPECT_TRUE(inc->fell_back_to_full);
  ExpectEquivalent(*full, *inc, "prefix chain break");
}

TEST_F(IncrementalVerifierTest, TamperAtWatermarkBlockFailsReanchor) {
  auto db = OpenWithAccounts("tamper_at", 10);
  ASSERT_NE(db, nullptr);
  std::vector<DatabaseDigest> trusted;
  DatabaseDigest d = SeedWatermark(db.get(), &trusted);

  // Corrupt the watermark block itself (its transactions-root column):
  // its recomputed hash no longer matches the stored watermark hash, so
  // re-anchoring must fail before anything is skipped.
  TableStore* blocks = db->database_ledger()->blocks_table_for_testing();
  Row* row = blocks->mutable_clustered()->MutableGet(
      {VB(static_cast<int64_t>(d.block_id))});
  ASSERT_NE(row, nullptr);
  std::vector<uint8_t> bytes((*row)[2].string_value().begin(),
                             (*row)[2].string_value().end());
  ASSERT_FALSE(bytes.empty());
  bytes[0] ^= 0x01;
  (*row)[2] = Value::Varbinary(std::move(bytes));

  auto full = VerifyLedger(db.get(), WithAnchors(db.get(), trusted));
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->ok());
  auto inc = VerifyLedgerIncremental(db.get(), trusted);
  ASSERT_TRUE(inc.ok());
  EXPECT_FALSE(inc->ok());
  EXPECT_TRUE(inc->fell_back_to_full);
  EXPECT_NE(inc->fallback_reason.find("watermark"), std::string::npos)
      << inc->fallback_reason;
  ExpectEquivalent(*full, *inc, "tampered watermark block");
}

TEST_F(IncrementalVerifierTest, TamperAfterWatermarkCaughtWithoutFallback) {
  auto db = OpenWithAccounts("tamper_after", 8);
  ASSERT_NE(db, nullptr);
  std::vector<DatabaseDigest> trusted;
  SeedWatermark(db.get(), &trusted);

  // Rows inserted after the watermark are untrusted and get their leaf
  // hashes recomputed, so tampering there is caught directly — no
  // fallback, yet the violation set is still identical to a full run's.
  InsertAccounts(db.get(), 4);
  TableStore* store = db->GetStoreForTesting("accounts");
  Row* row = store->mutable_clustered()->MutableGet({VS("acct10")});
  ASSERT_NE(row, nullptr);
  (*row)[1] = VB(31337);

  auto full = VerifyLedger(db.get(), WithAnchors(db.get(), trusted));
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->ok());
  auto inc = VerifyLedgerIncremental(db.get(), trusted);
  ASSERT_TRUE(inc.ok());
  EXPECT_FALSE(inc->ok());
  EXPECT_FALSE(inc->fell_back_to_full) << inc->fallback_reason;
  EXPECT_GT(inc->row_versions_skipped, 0u);
  ExpectEquivalent(*full, *inc, "tamper past watermark");
}

TEST_F(IncrementalVerifierTest, ContentFlipInPrefixIsTheDocumentedBlindSpot) {
  // DESIGN.md §11: the accumulator fingerprints version *structure*
  // (txn, sequence, operation), not cell contents. A content-only flip on
  // a non-indexed column of an already-verified row version is therefore
  // invisible to the incremental pass until the next full verification.
  // This test pins that documented divergence so any accumulator upgrade
  // that closes the gap has to update both DESIGN.md and this expectation.
  auto db = OpenWithAccounts("blind_spot", 8);
  ASSERT_NE(db, nullptr);
  std::vector<DatabaseDigest> trusted;
  SeedWatermark(db.get(), &trusted);

  TableStore* store = db->GetStoreForTesting("accounts");
  Row* row = store->mutable_clustered()->MutableGet({VS("acct2")});
  ASSERT_NE(row, nullptr);
  Value original = (*row)[1];
  (*row)[1] = VB(999999);

  auto full = VerifyLedger(db.get(), WithAnchors(db.get(), trusted));
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->ok());  // the full run catches it (invariant 4)
  auto inc = VerifyLedgerIncremental(db.get(), trusted);
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(inc->ok()) << inc->Summary();  // the blind spot
  EXPECT_FALSE(inc->fell_back_to_full);

  // Reverting restores agreement.
  (*row)[1] = original;
  full = VerifyLedger(db.get(), WithAnchors(db.get(), trusted));
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->ok()) << full->Summary();
  inc = VerifyLedgerIncremental(db.get(), trusted);
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(inc->ok()) << inc->Summary();
}

// ---- Stale and corrupt verification state ----

TEST_F(IncrementalVerifierTest, StaleWatermarkForMissingBlockFallsBack) {
  auto db = OpenWithAccounts("stale", 8);
  ASSERT_NE(db, nullptr);
  std::vector<DatabaseDigest> trusted;
  SeedWatermark(db.get(), &trusted);

  // A watermark pointing at a block the ledger does not have (say, state
  // restored from the wrong backup generation) must fall back cleanly.
  VerificationState stale = *db->GetVerificationState();
  stale.last_verified_block = 999;
  ASSERT_TRUE(db->StoreVerificationState(stale).ok());
  auto inc = VerifyLedgerIncremental(db.get(), trusted);
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(inc->ok()) << inc->Summary();
  EXPECT_TRUE(inc->fell_back_to_full);
  EXPECT_NE(inc->fallback_reason.find("not present"), std::string::npos)
      << inc->fallback_reason;

  // The clean fallback run re-seeded a correct watermark, so the next
  // incremental run is back on the fast path.
  auto inc2 = VerifyLedgerIncremental(db.get(), trusted);
  ASSERT_TRUE(inc2.ok());
  EXPECT_TRUE(inc2->ok());
  EXPECT_FALSE(inc2->fell_back_to_full) << inc2->fallback_reason;
}

TEST_F(IncrementalVerifierTest, StaleWatermarkHashMismatchFallsBack) {
  auto db = OpenWithAccounts("stale_hash", 8);
  ASSERT_NE(db, nullptr);
  std::vector<DatabaseDigest> trusted;
  SeedWatermark(db.get(), &trusted);

  VerificationState stale = *db->GetVerificationState();
  stale.block_hash.bytes[0] ^= 0x01;
  ASSERT_TRUE(db->StoreVerificationState(stale).ok());
  auto inc = VerifyLedgerIncremental(db.get(), trusted);
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(inc->ok()) << inc->Summary();
  EXPECT_TRUE(inc->fell_back_to_full);
  EXPECT_NE(inc->fallback_reason.find("watermark"), std::string::npos)
      << inc->fallback_reason;
}

TEST_F(IncrementalVerifierTest, RejectsStateForForeignDatabase) {
  auto db = OpenWithAccounts("foreign", 4);
  ASSERT_NE(db, nullptr);
  std::vector<DatabaseDigest> trusted;
  SeedWatermark(db.get(), &trusted);
  VerificationState foreign = *db->GetVerificationState();
  foreign.database_id = "some-other-db";
  EXPECT_EQ(db->StoreVerificationState(foreign).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IncrementalVerifierTest, CorruptStateFileIgnoredAtOpen) {
  std::vector<DatabaseDigest> trusted;
  {
    auto db = OpenWithAccounts("corrupt", 8);
    ASSERT_NE(db, nullptr);
    SeedWatermark(db.get(), &trusted);
  }
  std::string state_path = Path("corrupt") + "/verify_state.sldb";

  // Three ways the file can rot: a flipped payload byte, a torn tail and
  // outright garbage. Each must be treated as "no watermark": the state
  // is absent after Open and verification runs from scratch — cleanly.
  for (int way = 0; way < 3; way++) {
    SCOPED_TRACE("corruption " + std::to_string(way));
    std::ifstream in(state_path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string blob((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(blob.size(), 16u);
    std::string damaged = blob;
    if (way == 0)
      damaged[blob.size() / 2] ^= 0x01;
    else if (way == 1)
      damaged.resize(blob.size() / 2);
    else
      damaged = "this is not a verification state file";
    {
      std::ofstream out(state_path, std::ios::binary | std::ios::trunc);
      out << damaged;
    }

    auto db = Open("corrupt");
    ASSERT_NE(db, nullptr);
    EXPECT_FALSE(db->GetVerificationState().has_value());
    auto full = VerifyLedger(db.get(), WithAnchors(db.get(), trusted));
    ASSERT_TRUE(full.ok());
    auto inc = VerifyLedgerIncremental(db.get(), trusted);
    ASSERT_TRUE(inc.ok());
    EXPECT_TRUE(inc->ok()) << inc->Summary();
    EXPECT_FALSE(inc->fell_back_to_full);
    EXPECT_EQ(inc->watermark_block, 0u);
    EXPECT_EQ(inc->blocks_reverified, inc->blocks_checked);
    ExpectEquivalent(*full, *inc, "after corruption");
    db.reset();

    // The clean run above re-wrote a good state file; restore the damaged
    // copy's precondition by leaving the fresh file for the next round.
  }
}

TEST_F(IncrementalVerifierTest, EverySingleByteFlipInStateFileIsRejected) {
  // Encode/Decode round-trip, then exhaustive single-byte-flip rejection:
  // the CRC/magic/size envelope must catch every one-byte corruption.
  VerificationState state;
  state.database_id = "incdb";
  state.database_create_time = "2026-08-08T00:00:00Z";
  state.last_verified_block = 42;
  for (size_t i = 0; i < state.block_hash.bytes.size(); i++)
    state.block_hash.bytes[i] = static_cast<uint8_t>(i * 7 + 1);
  state.anchor.database_id = "incdb";
  state.anchor.database_create_time = state.database_create_time;
  state.anchor.block_id = 42;
  state.anchor.block_hash = state.block_hash;
  state.anchor.generated_at_micros = 123456;
  state.anchor.last_commit_ts_micros = 123400;
  state.anchor_durable = true;
  state.tables.push_back({1, 10, 0xDEADBEEFULL});
  state.tables.push_back({7, 3, 0x1234567890ULL});

  std::string encoded = state.Encode();
  auto decoded = VerificationState::Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(*decoded == state);

  for (size_t i = 0; i < encoded.size(); i++) {
    std::string flipped = encoded;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_FALSE(VerificationState::Decode(flipped).ok())
        << "flip at byte " << i << " was accepted";
  }
  // Truncation at every length is rejected too.
  for (size_t len = 0; len < encoded.size(); len++) {
    EXPECT_FALSE(VerificationState::Decode(encoded.substr(0, len)).ok())
        << "truncation to " << len << " bytes was accepted";
  }
}

// ---- Crash torture: the watermark save is never half-trusted ----

TEST_F(IncrementalVerifierTest, CrashAtEverySyncPointDuringStateSave) {
  // Arm a crash at the nth sync after the workload settles, so the crash
  // lands inside VerifyLedgerIncremental's best-effort state save (temp
  // file sync, then directory sync). Whatever survives on disk must be a
  // valid previous-or-new watermark or nothing — recovery re-anchors and
  // agrees with a full verification either way.
  bool completed_without_crash = false;
  int crash_point = 1;
  for (; crash_point <= 10 && !completed_without_crash; crash_point++) {
    SCOPED_TRACE("crash point " + std::to_string(crash_point));
    std::string subdir = "crash" + std::to_string(crash_point);
    FaultInjectionEnv env(nullptr, /*seed=*/7000 + crash_point);
    std::vector<DatabaseDigest> trusted;
    next_acct_ = 0;
    {
      auto dbr = LedgerDatabase::Open(MakeOptions(subdir, &env));
      ASSERT_TRUE(dbr.ok()) << dbr.status().ToString();
      auto db = std::move(*dbr);
      ASSERT_TRUE(db->CreateTable("accounts", AccountSchema(),
                                  TableKind::kUpdateable)
                      .ok());
      InsertAccounts(db.get(), 6);
      // Seed a first watermark so the crashing save below is *replacing*
      // an existing state file — the riskiest path (temp + rename over).
      SeedWatermark(db.get(), &trusted);
      InsertAccounts(db.get(), 3);
      auto digest = db->GenerateDigest();
      ASSERT_TRUE(digest.ok());
      trusted.push_back(*digest);

      env.CrashAtSync(crash_point);
      auto inc = VerifyLedgerIncremental(db.get(), trusted);
      if (env.crashed()) {
        // The save is best-effort: a crash inside it must not fail the
        // verification that just succeeded.
        if (inc.ok()) EXPECT_TRUE(inc->ok()) << inc->Summary();
      } else {
        completed_without_crash = true;
        ASSERT_TRUE(inc.ok()) << inc.status().ToString();
        EXPECT_TRUE(inc->ok()) << inc->Summary();
      }
    }

    // Power-loss reopen on the real filesystem. The recovered watermark is
    // valid-or-absent: incremental verification must re-anchor without a
    // fallback and match a from-scratch verification exactly.
    auto db = LedgerDatabase::Open(MakeOptions(subdir, nullptr));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto state = (*db)->GetVerificationState();
    if (state.has_value()) {
      EXPECT_TRUE(state->last_verified_block == trusted[0].block_id ||
                  state->last_verified_block == trusted[1].block_id)
          << "torn watermark trusted: block "
          << state->last_verified_block;
    }
    auto full =
        VerifyLedger(db->get(), WithAnchors(db->get(), trusted));
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    auto inc = VerifyLedgerIncremental(db->get(), trusted);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    EXPECT_TRUE(inc->ok()) << inc->Summary();
    EXPECT_FALSE(inc->fell_back_to_full) << inc->fallback_reason;
    ExpectEquivalent(*full, *inc, "post-crash recovery");
  }
  // The loop must have walked past the save's last sync point.
  EXPECT_TRUE(completed_without_crash);
  EXPECT_GT(crash_point, 2);
}

}  // namespace
}  // namespace sqlledger
