// Merkle tree tests: streaming/materialized equivalence (the paper's
// §3.2.1 algorithm), O(log N) space, savepoint snapshot/restore, and
// inclusion proofs for every leaf at many tree sizes.

#include <gtest/gtest.h>

#include <cmath>

#include "crypto/merkle.h"

namespace sqlledger {
namespace {

std::vector<Hash256> MakeLeaves(uint64_t n) {
  std::vector<Hash256> leaves;
  leaves.reserve(n);
  for (uint64_t i = 0; i < n; i++) {
    std::string data = "leaf-" + std::to_string(i);
    leaves.push_back(MerkleLeafHash(Slice(data)));
  }
  return leaves;
}

TEST(MerkleTest, EmptyTreeRootIsZero) {
  MerkleBuilder builder;
  EXPECT_TRUE(builder.Root().IsZero());
  MerkleTree tree({});
  EXPECT_TRUE(tree.Root().IsZero());
}

TEST(MerkleTest, SingleLeafRootIsLeafHash) {
  Hash256 leaf = MerkleLeafHash(Slice(std::string("only")));
  MerkleBuilder builder;
  builder.AddLeafHash(leaf);
  EXPECT_EQ(builder.Root(), leaf);
}

TEST(MerkleTest, LeafAndNodeHashesAreDomainSeparated) {
  // H(0x00 || x) must differ from H(0x01 || x): a leaf can never be
  // reinterpreted as an internal node.
  std::string data(64, 'x');
  Hash256 leaf = MerkleLeafHash(Slice(data));
  Hash256 l, r;
  std::memcpy(l.bytes.data(), data.data(), 32);
  std::memcpy(r.bytes.data(), data.data() + 32, 32);
  EXPECT_NE(leaf, MerkleNodeHash(l, r));
}

// The core property: the streaming builder computes exactly the
// materialized tree's root for every size.
class MerkleEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MerkleEquivalence, StreamingMatchesMaterialized) {
  uint64_t n = GetParam();
  std::vector<Hash256> leaves = MakeLeaves(n);
  MerkleBuilder builder;
  for (const Hash256& leaf : leaves) builder.AddLeafHash(leaf);
  MerkleTree tree(leaves);
  EXPECT_EQ(builder.Root(), tree.Root());
  EXPECT_EQ(builder.leaf_count(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16,
                                           17, 31, 33, 63, 100, 127, 128, 255,
                                           256, 1000));

TEST(MerkleTest, SpaceIsLogarithmic) {
  MerkleBuilder builder;
  for (uint64_t i = 0; i < 100000; i++) {
    std::string data = std::to_string(i);
    builder.AddLeaf(Slice(data));
    size_t bound =
        static_cast<size_t>(std::log2(static_cast<double>(i + 1))) + 2;
    ASSERT_LE(builder.pending_nodes(), bound) << "at leaf " << i;
  }
}

TEST(MerkleTest, RootIsOrderSensitive) {
  std::vector<Hash256> leaves = MakeLeaves(4);
  MerkleBuilder a, b;
  for (const Hash256& leaf : leaves) a.AddLeafHash(leaf);
  std::swap(leaves[1], leaves[2]);
  for (const Hash256& leaf : leaves) b.AddLeafHash(leaf);
  EXPECT_NE(a.Root(), b.Root());
}

TEST(MerkleTest, RootCallDoesNotMutateBuilder) {
  MerkleBuilder builder;
  std::vector<Hash256> leaves = MakeLeaves(5);
  for (const Hash256& leaf : leaves) builder.AddLeafHash(leaf);
  Hash256 r1 = builder.Root();
  Hash256 r2 = builder.Root();
  EXPECT_EQ(r1, r2);
  builder.AddLeafHash(MakeLeaves(6)[5]);
  EXPECT_EQ(builder.Root(), MerkleTree(MakeLeaves(6)).Root());
}

TEST(MerkleTest, SavepointRestoreRewindsTree) {
  std::vector<Hash256> leaves = MakeLeaves(10);
  MerkleBuilder builder;
  for (int i = 0; i < 6; i++) builder.AddLeafHash(leaves[i]);
  Hash256 root_at_6 = builder.Root();
  MerkleBuilderState state = builder.GetState();

  for (int i = 6; i < 10; i++) builder.AddLeafHash(leaves[i]);
  EXPECT_NE(builder.Root(), root_at_6);

  builder.RestoreState(state);
  EXPECT_EQ(builder.Root(), root_at_6);
  EXPECT_EQ(builder.leaf_count(), 6u);

  // Re-appending the same suffix reproduces the full tree.
  for (int i = 6; i < 10; i++) builder.AddLeafHash(leaves[i]);
  EXPECT_EQ(builder.Root(), MerkleTree(leaves).Root());
}

class MerkleProofAllLeaves : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MerkleProofAllLeaves, EveryLeafProves) {
  uint64_t n = GetParam();
  std::vector<Hash256> leaves = MakeLeaves(n);
  MerkleTree tree(leaves);
  Hash256 root = tree.Root();
  for (uint64_t i = 0; i < n; i++) {
    MerkleProof proof = tree.Prove(i);
    EXPECT_TRUE(MerkleTree::VerifyProof(leaves[i], proof, root))
        << "leaf " << i << " of " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofAllLeaves,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 12, 16, 33, 100));

TEST(MerkleProofTest, WrongLeafFailsProof) {
  std::vector<Hash256> leaves = MakeLeaves(8);
  MerkleTree tree(leaves);
  MerkleProof proof = tree.Prove(3);
  EXPECT_FALSE(MerkleTree::VerifyProof(leaves[4], proof, tree.Root()));
}

TEST(MerkleProofTest, TamperedSiblingFailsProof) {
  std::vector<Hash256> leaves = MakeLeaves(8);
  MerkleTree tree(leaves);
  MerkleProof proof = tree.Prove(3);
  proof.steps[0].sibling.bytes[0] ^= 1;
  EXPECT_FALSE(MerkleTree::VerifyProof(leaves[3], proof, tree.Root()));
}

TEST(MerkleProofTest, WrongRootFailsProof) {
  std::vector<Hash256> leaves = MakeLeaves(8);
  MerkleTree tree(leaves);
  MerkleProof proof = tree.Prove(0);
  Hash256 wrong = tree.Root();
  wrong.bytes[31] ^= 1;
  EXPECT_FALSE(MerkleTree::VerifyProof(leaves[0], proof, wrong));
}

TEST(MerkleProofTest, OutOfRangeIndexRejected) {
  std::vector<Hash256> leaves = MakeLeaves(4);
  MerkleTree tree(leaves);
  MerkleProof proof = tree.Prove(0);
  proof.leaf_index = 4;  // == leaf_count
  EXPECT_FALSE(MerkleTree::VerifyProof(leaves[0], proof, tree.Root()));
  proof.leaf_count = 0;
  EXPECT_FALSE(MerkleTree::VerifyProof(leaves[0], proof, tree.Root()));
}

TEST(MerkleProofTest, ProofSizeIsLogarithmic) {
  std::vector<Hash256> leaves = MakeLeaves(1024);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.Prove(0).steps.size(), 10u);  // 2^10 leaves
}

}  // namespace
}  // namespace sqlledger
