// FaultyDigestStore: the network-fault decorator must inject exactly the
// scripted/seeded faults — outages, transient errors, lost acks, duplicate
// deliveries — and be byte-for-byte reproducible per seed (DESIGN.md §9).

#include <gtest/gtest.h>

#include "ledger/digest_store.h"
#include "ledger/faulty_digest_store.h"
#include "test_util.h"

namespace sqlledger {
namespace {

DatabaseDigest MakeDigest(uint64_t block_id) {
  DatabaseDigest d;
  d.database_id = "testdb";
  d.database_create_time = "t0";
  d.block_id = block_id;
  d.block_hash = Sha256::Digest(Slice("block" + std::to_string(block_id)));
  d.generated_at_micros = 1000 + static_cast<int64_t>(block_id);
  d.last_commit_ts_micros = 900 + static_cast<int64_t>(block_id);
  return d;
}

TEST(FaultyDigestStoreTest, OutageFailsUploadsAndReads) {
  InMemoryDigestStore target;
  FaultyDigestStore store(&target);
  ASSERT_TRUE(store.Upload(MakeDigest(1)).ok());

  store.SetOutage(true);
  EXPECT_TRUE(store.outage());
  EXPECT_TRUE(store.Upload(MakeDigest(2)).code() == StatusCode::kIOError);
  EXPECT_TRUE(store.ListAll().status().code() == StatusCode::kIOError);
  EXPECT_TRUE(store.Latest("").status().code() == StatusCode::kIOError);
  EXPECT_EQ(target.ListAll()->size(), 1u);  // nothing leaked through

  store.SetOutage(false);
  ASSERT_TRUE(store.Upload(MakeDigest(2)).ok());
  EXPECT_EQ(store.ListAll()->size(), 2u);
  EXPECT_EQ(store.injected_failures(), 1u);
}

TEST(FaultyDigestStoreTest, ScriptedTransientFailuresCountDown) {
  InMemoryDigestStore target;
  FaultyDigestStore store(&target);
  store.FailUploads(2, StatusCode::kBusy);
  EXPECT_TRUE(store.Upload(MakeDigest(1)).code() == StatusCode::kBusy);
  EXPECT_TRUE(store.Upload(MakeDigest(1)).code() == StatusCode::kBusy);
  EXPECT_TRUE(store.Upload(MakeDigest(1)).ok());  // countdown exhausted
  EXPECT_EQ(store.injected_failures(), 2u);
  EXPECT_EQ(store.upload_attempts(), 3u);
  EXPECT_EQ(target.ListAll()->size(), 1u);
}

TEST(FaultyDigestStoreTest, LostAckStoresButReportsError) {
  InMemoryDigestStore target;
  FaultyDigestStore store(&target);
  store.LoseAcks(1);
  DatabaseDigest d = MakeDigest(1);
  // The ambiguous outcome: caller sees IOError, store holds the digest.
  EXPECT_TRUE(store.Upload(d).code() == StatusCode::kIOError);
  EXPECT_EQ(store.lost_acks(), 1u);
  ASSERT_EQ(target.ListAll()->size(), 1u);
  EXPECT_TRUE((*target.ListAll())[0] == d);
  // The retry re-sends identical bytes; the idempotent target absorbs it.
  EXPECT_TRUE(store.Upload(d).ok());
  EXPECT_EQ(target.ListAll()->size(), 1u);
}

TEST(FaultyDigestStoreTest, DuplicateDeliveryAbsorbedByIdempotentTarget) {
  InMemoryDigestStore target;
  FaultyDigestStore store(&target);
  store.DeliverDuplicates(1);
  ASSERT_TRUE(store.Upload(MakeDigest(1)).ok());
  EXPECT_EQ(store.duplicates_delivered(), 1u);
  EXPECT_EQ(target.ListAll()->size(), 1u);  // one copy despite two arrivals
}

TEST(FaultyDigestStoreTest, SeededProbabilisticFaultsReplayExactly) {
  FaultyDigestStore::Probabilities p;
  p.transient_error = 0.3;
  p.ack_lost = 0.2;
  p.duplicate = 0.2;
  auto run = [&](uint64_t seed) {
    InMemoryDigestStore target;
    FaultyDigestStore store(&target, seed);
    store.SetProbabilities(p);
    std::string outcome;
    for (uint64_t b = 0; b < 64; b++)
      outcome += store.Upload(MakeDigest(b)).ok() ? 'o' : 'x';
    return outcome;
  };
  uint64_t seed = TestSeed();
  std::string a = run(seed), b = run(seed);
  EXPECT_EQ(a, b) << "same seed must inject identical fault sequences "
                     "(SQLLEDGER_TEST_SEED=" << seed << ")";
  EXPECT_NE(a.find('x'), std::string::npos) << "no fault ever fired";
  EXPECT_NE(a.find('o'), std::string::npos) << "every upload failed";
  EXPECT_NE(a, run(seed + 1)) << "different seeds gave identical sequences";
}

}  // namespace
}  // namespace sqlledger
