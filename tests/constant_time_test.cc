// Tests for util/constant_time.h. Timing itself is not assertable in a
// unit test; what is assertable is exact equality semantics across every
// differing byte position (a short-circuit bug typically shows up as a
// position-dependent result) and that the Hash256 comparison operators
// route through the constant-time primitive.

#include "util/constant_time.h"

#include <array>
#include <cstring>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "gtest/gtest.h"

namespace sqlledger {
namespace {

TEST(ConstantTimeTest, EqualBuffers) {
  std::array<uint8_t, 32> a{}, b{};
  for (size_t i = 0; i < a.size(); i++) a[i] = b[i] = static_cast<uint8_t>(i * 7);
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_TRUE(ConstantTimeEqual(a.data(), b.data(), a.size()));
}

TEST(ConstantTimeTest, ZeroLengthIsEqual) {
  uint8_t x = 1, y = 2;
  EXPECT_TRUE(ConstantTimeEqual(&x, &y, 0));
}

TEST(ConstantTimeTest, DetectsDifferenceAtEveryPosition) {
  std::array<uint8_t, 32> base{};
  for (size_t i = 0; i < base.size(); i++) base[i] = static_cast<uint8_t>(i);
  for (size_t pos = 0; pos < base.size(); pos++) {
    for (int bit = 0; bit < 8; bit++) {
      std::array<uint8_t, 32> mutated = base;
      mutated[pos] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(ConstantTimeEqual(base, mutated))
          << "missed flip at byte " << pos << " bit " << bit;
      EXPECT_FALSE(ConstantTimeEqual(mutated, base));
    }
  }
}

TEST(ConstantTimeTest, MultipleDifferencesStillUnequal) {
  std::array<uint8_t, 16> a{}, b{};
  b.fill(0xff);
  EXPECT_FALSE(ConstantTimeEqual(a, b));
}

TEST(ConstantTimeTest, Hash256OperatorsRouteThroughConstantTime) {
  Hash256 a = Sha256::Digest(Slice("sql ledger"));
  Hash256 b = a;
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  b.bytes[31] ^= 1;
  EXPECT_TRUE(a != b);
  EXPECT_FALSE(ConstantTimeEqual(a, b));
  // Agreement with the naive comparison on random-ish digests.
  for (int i = 0; i < 64; i++) {
    Hash256 x = Sha256::Digest(Slice(std::string(1, static_cast<char>(i))));
    Hash256 y = Sha256::Digest(Slice(std::string(1, static_cast<char>(i % 2))));
    EXPECT_EQ(x.bytes == y.bytes, ConstantTimeEqual(x, y));
    EXPECT_EQ(x.bytes == y.bytes, x == y);
  }
}

TEST(ConstantTimeTest, HmacSignerVerifyUsesFullComparison) {
  HmacSigner signer("key-1", std::vector<uint8_t>{1, 2, 3, 4});
  Hash256 digest = Sha256::Digest(Slice("block root"));
  std::vector<uint8_t> sig = signer.Sign(digest);
  EXPECT_TRUE(signer.Verify(digest, Slice(sig)));
  // Any single-byte corruption anywhere in the MAC must be rejected.
  for (size_t pos = 0; pos < sig.size(); pos++) {
    std::vector<uint8_t> bad = sig;
    bad[pos] ^= 0x80;
    EXPECT_FALSE(signer.Verify(digest, Slice(bad))) << "at byte " << pos;
  }
  // Truncated / extended signatures are rejected by length, never compared.
  std::vector<uint8_t> shorter(sig.begin(), sig.end() - 1);
  EXPECT_FALSE(signer.Verify(digest, Slice(shorter)));
  std::vector<uint8_t> longer = sig;
  longer.push_back(0);
  EXPECT_FALSE(signer.Verify(digest, Slice(longer)));
}

}  // namespace
}  // namespace sqlledger
