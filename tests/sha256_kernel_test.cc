// Kernel-equivalence tests for the runtime-dispatched SHA-256 pipeline:
// every kernel available on this machine (scalar always; sha-ni / armv8-ce
// when present) must produce bit-identical digests — NIST FIPS 180-4
// vectors, padding-boundary straddles, and randomized messages up to 4 KiB.
// The batched interfaces (HashMany / Sha256Batch) must match the
// single-shot path exactly.

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/sha256_kernel.h"

namespace sqlledger {
namespace {

struct NistVector {
  const char* input;
  const char* digest_hex;
};

constexpr NistVector kNistVectors[] = {
    {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
    {"abc",
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
    {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
    {"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
     "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
     "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"},
};

TEST(Sha256KernelTest, AtLeastScalarAvailable) {
  auto kernels = AvailableSha256Kernels();
  ASSERT_FALSE(kernels.empty());
  bool has_scalar = false;
  for (const Sha256Kernel& k : kernels)
    if (std::string(k.name) == "scalar") has_scalar = true;
  EXPECT_TRUE(has_scalar);
}

TEST(Sha256KernelTest, ActiveKernelIsListed) {
  const Sha256Kernel& active = ActiveSha256Kernel();
  bool listed = false;
  for (const Sha256Kernel& k : AvailableSha256Kernels())
    if (std::string(k.name) == active.name) listed = true;
  EXPECT_TRUE(listed) << "active kernel: " << active.name;
  EXPECT_STREQ(Sha256::KernelName(), active.name);
}

TEST(Sha256KernelTest, NistVectorsOnEveryKernel) {
  for (const Sha256Kernel& kernel : AvailableSha256Kernels()) {
    for (const NistVector& v : kNistVectors) {
      Hash256 got = Sha256DigestWithKernel(
          kernel, Slice(), Slice(v.input, std::strlen(v.input)));
      EXPECT_EQ(got.ToHex(), v.digest_hex)
          << "kernel " << kernel.name << ", input \"" << v.input << "\"";
    }
  }
}

TEST(Sha256KernelTest, MillionAsOnEveryKernel) {
  std::string data(1000000, 'a');
  for (const Sha256Kernel& kernel : AvailableSha256Kernels()) {
    EXPECT_EQ(Sha256DigestWithKernel(kernel, Slice(), Slice(data)).ToHex(),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
        << "kernel " << kernel.name;
  }
}

TEST(Sha256KernelTest, PaddingBoundaryStraddles) {
  // Lengths that straddle the 55/56 padding split and the 64-byte block
  // boundary — the classic off-by-one territory for compression kernels.
  auto kernels = AvailableSha256Kernels();
  for (size_t n : {0u, 1u, 54u, 55u, 56u, 57u, 62u, 63u, 64u, 65u, 111u,
                   119u, 120u, 127u, 128u, 129u}) {
    std::string data(n, static_cast<char>('A' + n % 26));
    Hash256 reference = Sha256DigestWithKernel(kernels[0], Slice(), Slice(data));
    for (size_t k = 1; k < kernels.size(); k++) {
      EXPECT_EQ(Sha256DigestWithKernel(kernels[k], Slice(), Slice(data)),
                reference)
          << "kernel " << kernels[k].name << ", length " << n;
    }
    // And against the incremental context (which routes through the active
    // kernel's compress function via a different buffering path).
    EXPECT_EQ(Sha256::Digest(Slice(data)), reference) << "length " << n;
  }
}

TEST(Sha256KernelTest, PrefixFoldingMatchesConcatenation) {
  // Sha256DigestWithKernel(prefix, data) must equal hashing prefix||data.
  auto kernels = AvailableSha256Kernels();
  std::mt19937 rng(42);
  for (size_t n : {0u, 1u, 31u, 54u, 55u, 62u, 63u, 64u, 65u, 200u, 4096u}) {
    std::string data(n, '\0');
    for (char& c : data) c = static_cast<char>(rng());
    std::string with_prefix = std::string(1, '\0') + data;
    Hash256 reference = Sha256::Digest(Slice(with_prefix));
    for (const Sha256Kernel& kernel : kernels) {
      uint8_t prefix = 0x00;
      EXPECT_EQ(Sha256DigestWithKernel(kernel, Slice(&prefix, 1), Slice(data)),
                reference)
          << "kernel " << kernel.name << ", length " << n;
    }
  }
}

TEST(Sha256KernelTest, RandomizedEquivalenceFuzz) {
  auto kernels = AvailableSha256Kernels();
  std::mt19937 rng(20260806);
  for (int iter = 0; iter < 400; iter++) {
    size_t n = rng() % 4097;  // 0..4096 inclusive
    std::string data(n, '\0');
    for (char& c : data) c = static_cast<char>(rng());

    Hash256 reference = Sha256DigestWithKernel(kernels[0], Slice(), Slice(data));
    for (size_t k = 1; k < kernels.size(); k++) {
      ASSERT_EQ(Sha256DigestWithKernel(kernels[k], Slice(), Slice(data)),
                reference)
          << "kernel " << kernels[k].name << ", length " << n;
    }
    // Incremental with a random split point.
    size_t split = n == 0 ? 0 : rng() % (n + 1);
    Sha256 ctx;
    ctx.Update(Slice(data.data(), split));
    ctx.Update(Slice(data.data() + split, n - split));
    ASSERT_EQ(ctx.Finish(), reference) << "length " << n << " split " << split;
  }
}

TEST(Sha256KernelTest, HashManyMatchesSingleShot) {
  std::mt19937 rng(7);
  std::vector<std::string> messages;
  for (int i = 0; i < 100; i++) {
    size_t n = rng() % 513;
    std::string m(n, '\0');
    for (char& c : m) c = static_cast<char>(rng());
    messages.push_back(std::move(m));
  }
  std::vector<Slice> inputs;
  for (const std::string& m : messages) inputs.push_back(Slice(m));
  std::vector<Hash256> batched(messages.size());
  HashMany(inputs.data(), inputs.size(), batched.data());
  for (size_t i = 0; i < messages.size(); i++) {
    EXPECT_EQ(batched[i], Sha256::Digest(Slice(messages[i]))) << "index " << i;
  }
}

TEST(Sha256KernelTest, HashManyWithPrefixMatchesMerkleLeaf) {
  std::vector<std::string> messages = {"", "a", "leaf-data",
                                       std::string(300, 'q')};
  std::vector<Slice> inputs;
  for (const std::string& m : messages) inputs.push_back(Slice(m));
  std::vector<Hash256> batched(messages.size());
  MerkleLeafHashMany(inputs.data(), inputs.size(), batched.data());
  for (size_t i = 0; i < messages.size(); i++) {
    EXPECT_EQ(batched[i], MerkleLeafHash(Slice(messages[i]))) << "index " << i;
  }
}

TEST(Sha256KernelTest, Sha256BatchMatchesSingleShot) {
  std::string a = "first";
  std::string b(4096, 'z');
  std::string c = "";
  Hash256 ha, hb, hc, hd;
  Sha256Batch batch;
  batch.Add(Slice(a), &ha);
  batch.Add(Slice(b), &hb);
  batch.Add(Slice(c), &hc);
  batch.AddWithPrefix(0x01, Slice(a), &hd);
  EXPECT_EQ(batch.pending(), 4u);
  batch.Run();
  EXPECT_EQ(batch.pending(), 0u);
  EXPECT_EQ(ha, Sha256::Digest(Slice(a)));
  EXPECT_EQ(hb, Sha256::Digest(Slice(b)));
  EXPECT_EQ(hc, Sha256::Digest(Slice(c)));
  EXPECT_EQ(hd, Sha256::Digest2(Slice("\x01", 1), Slice(a)));
}

}  // namespace
}  // namespace sqlledger
