// Digest store tests: JSON round-trip, write-once blob semantics,
// incarnations, and the upload-time fork check (paper §2.4, §3.6).

#include <gtest/gtest.h>

#include <fstream>

#include "ledger/digest_store.h"
#include "ledger/faulty_digest_store.h"
#include "test_util.h"

namespace sqlledger {
namespace {

DatabaseDigest MakeDigest(uint64_t block_id, const std::string& incarnation) {
  DatabaseDigest d;
  d.database_id = "testdb";
  d.database_create_time = incarnation;
  d.block_id = block_id;
  d.block_hash = Sha256::Digest(Slice("block" + std::to_string(block_id)));
  d.generated_at_micros = 1000 + static_cast<int64_t>(block_id);
  d.last_commit_ts_micros = 900 + static_cast<int64_t>(block_id);
  return d;
}

TEST(DigestJsonTest, RoundTrip) {
  DatabaseDigest d = MakeDigest(7, "t0");
  auto parsed = DatabaseDigest::FromJson(d.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(*parsed == d);
}

TEST(DigestJsonTest, RejectsMalformed) {
  EXPECT_FALSE(DatabaseDigest::FromJson("not json").ok());
  EXPECT_FALSE(DatabaseDigest::FromJson("{}").ok());
  EXPECT_FALSE(DatabaseDigest::FromJson(
                   R"({"database_id":"x","database_create_time":"t",
                       "block_id":1,"block_hash":"zz","generated_at":1,
                       "last_commit_ts":1})")
                   .ok());
}

TEST(InMemoryDigestStoreTest, UploadListLatest) {
  InMemoryDigestStore store;
  EXPECT_TRUE(store.Latest("").status().IsNotFound());
  ASSERT_TRUE(store.Upload(MakeDigest(1, "t0")).ok());
  ASSERT_TRUE(store.Upload(MakeDigest(2, "t0")).ok());
  ASSERT_TRUE(store.Upload(MakeDigest(3, "t1")).ok());

  auto all = store.ListAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);

  auto latest_t0 = store.Latest("t0");
  ASSERT_TRUE(latest_t0.ok());
  EXPECT_EQ(latest_t0->block_id, 2u);
  auto latest_any = store.Latest("");
  ASSERT_TRUE(latest_any.ok());
  EXPECT_EQ(latest_any->block_id, 3u);
}

TEST(InMemoryDigestStoreTest, IdenticalRetryIsIdempotentDivergentIsFork) {
  InMemoryDigestStore store;
  DatabaseDigest d = MakeDigest(3, "t0");
  ASSERT_TRUE(store.Upload(d).ok());
  // Byte-identical retry (ambiguous first attempt): OK, no second copy.
  ASSERT_TRUE(store.Upload(d).ok());
  EXPECT_EQ(store.ListAll()->size(), 1u);
  // Same block, same hash, later generation time: a legitimate re-digest of
  // a quiet database — stored normally.
  DatabaseDigest quiet = d;
  quiet.generated_at_micros += 50;
  ASSERT_TRUE(store.Upload(quiet).ok());
  EXPECT_EQ(store.ListAll()->size(), 2u);
  // Same block, DIFFERENT hash: a fork, refused.
  DatabaseDigest forged = d;
  forged.block_hash.bytes[0] ^= 1;
  EXPECT_TRUE(store.Upload(forged).IsIntegrityViolation());
  EXPECT_EQ(store.ListAll()->size(), 2u);
}

class BlobStoreTest : public TempDirTest {};

TEST_F(BlobStoreTest, IdenticalRetryIsIdempotentDivergentIsFork) {
  auto store = ImmutableBlobDigestStore::Open(Path("digests"));
  ASSERT_TRUE(store.ok());
  DatabaseDigest d = MakeDigest(3, "t0");
  ASSERT_TRUE((*store)->Upload(d).ok());
  ASSERT_TRUE((*store)->Upload(d).ok());  // duplicate delivery absorbed
  EXPECT_EQ((*store)->ListAll()->size(), 1u);
  DatabaseDigest forged = d;
  forged.block_hash.bytes[0] ^= 1;
  EXPECT_TRUE((*store)->Upload(forged).IsIntegrityViolation());
  EXPECT_EQ((*store)->ListAll()->size(), 1u);
}

TEST_F(BlobStoreTest, UploadPersistsAndLists) {
  auto store = ImmutableBlobDigestStore::Open(Path("digests"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Upload(MakeDigest(1, "t0")).ok());
  ASSERT_TRUE((*store)->Upload(MakeDigest(2, "t0")).ok());

  auto all = (*store)->ListAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].block_id, 1u);
  EXPECT_EQ((*all)[1].block_id, 2u);

  // Re-open (a different process) sees the same digests.
  auto reopened = ImmutableBlobDigestStore::Open(Path("digests"));
  ASSERT_TRUE(reopened.ok());
  auto latest = (*reopened)->Latest("t0");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->block_id, 2u);
}

TEST_F(BlobStoreTest, BlobsAreWriteProtected) {
  auto store = ImmutableBlobDigestStore::Open(Path("digests"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Upload(MakeDigest(1, "t0")).ok());
  std::string blob = Path("digests") + "/t0/digest-00000000.json";
  ASSERT_TRUE(std::filesystem::exists(blob));
  auto perms = std::filesystem::status(blob).permissions();
  EXPECT_EQ(perms & std::filesystem::perms::owner_write,
            std::filesystem::perms::none);
}

TEST_F(BlobStoreTest, IncarnationsKeptSeparate) {
  // A point-in-time restore produces a new incarnation; digests from both
  // incarnations are all retained (paper §3.6).
  auto store = ImmutableBlobDigestStore::Open(Path("digests"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Upload(MakeDigest(1, "t0")).ok());
  ASSERT_TRUE((*store)->Upload(MakeDigest(2, "t0")).ok());
  ASSERT_TRUE((*store)->Upload(MakeDigest(1, "t1_restored")).ok());

  auto all = (*store)->ListAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
  EXPECT_TRUE(std::filesystem::exists(Path("digests") + "/t0"));
  EXPECT_TRUE(std::filesystem::exists(Path("digests") + "/t1_restored"));
}

class UploadFlowTest : public TempDirTest {};

TEST_F(UploadFlowTest, GenerateAndUploadChains) {
  auto db = OpenTestDb(/*block_size=*/2);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  InMemoryDigestStore store;

  ASSERT_TRUE(InsertOne(db.get(), "t", 1, "a").ok());
  auto d1 = GenerateAndUploadDigest(db.get(), &store);
  ASSERT_TRUE(d1.ok()) << d1.status().ToString();

  for (int i = 2; i <= 6; i++)
    ASSERT_TRUE(InsertOne(db.get(), "t", i, "x").ok());
  auto d2 = GenerateAndUploadDigest(db.get(), &store);
  ASSERT_TRUE(d2.ok());
  EXPECT_GT(d2->block_id, d1->block_id);
  EXPECT_EQ(store.ListAll()->size(), 2u);
}

TEST_F(UploadFlowTest, ForkRefusedAtUpload) {
  auto db = OpenTestDb(/*block_size=*/2);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  InMemoryDigestStore store;

  ASSERT_TRUE(InsertOne(db.get(), "t", 1, "a").ok());
  auto d1 = GenerateAndUploadDigest(db.get(), &store);
  ASSERT_TRUE(d1.ok());

  // Attacker forks the chain: overwrite the block d1 covers.
  auto block = db->database_ledger()->FindBlock(d1->block_id);
  ASSERT_TRUE(block.ok());
  BlockRecord forged = *block;
  forged.transactions_root.bytes[0] ^= 1;
  ASSERT_TRUE(db->database_ledger()
                  ->blocks_table_for_testing()
                  ->Update(BlockRecordToRow(forged))
                  .ok());

  ASSERT_TRUE(InsertOne(db.get(), "t", 2, "b").ok());
  auto d2 = GenerateAndUploadDigest(db.get(), &store);
  EXPECT_TRUE(d2.status().IsIntegrityViolation());
  EXPECT_EQ(store.ListAll()->size(), 1u);  // forged digest never uploaded
}

TEST(SignedDigestTest, SignVerifyRoundTrip) {
  HmacSigner signer("company-key", {1, 2, 3, 4, 5});
  DatabaseDigest digest = MakeDigest(5, "t0");
  SignedDigest signed_digest = SignDigest(digest, signer);
  EXPECT_TRUE(VerifySignedDigest(signed_digest, signer));
  EXPECT_EQ(signed_digest.key_id, "company-key");

  // JSON round-trip preserves verifiability — the document can be shared
  // with partners and auditors (paper §2.4).
  auto parsed = SignedDigest::FromJson(signed_digest.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(VerifySignedDigest(*parsed, signer));
  EXPECT_TRUE(parsed->digest == digest);
}

TEST(SignedDigestTest, TamperedDigestFailsSignature) {
  HmacSigner signer("k", {9});
  SignedDigest signed_digest = SignDigest(MakeDigest(5, "t0"), signer);
  signed_digest.digest.block_id = 6;  // forge the covered block
  EXPECT_FALSE(VerifySignedDigest(signed_digest, signer));
  signed_digest = SignDigest(MakeDigest(5, "t0"), signer);
  signed_digest.signature[0] ^= 1;
  EXPECT_FALSE(VerifySignedDigest(signed_digest, signer));
  HmacSigner other("other", {7});
  EXPECT_FALSE(
      VerifySignedDigest(SignDigest(MakeDigest(5, "t0"), signer), other));
}

TEST_F(UploadFlowTest, VerifyAgainstStoreDownloadsDigests) {
  auto db = OpenTestDb(/*block_size=*/2);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  InMemoryDigestStore store;
  for (int i = 1; i <= 4; i++) {
    ASSERT_TRUE(InsertOne(db.get(), "t", i, "x").ok());
    ASSERT_TRUE(GenerateAndUploadDigest(db.get(), &store).ok());
  }
  // Digests of an unrelated database must be ignored, not flagged.
  DatabaseDigest foreign = MakeDigest(99, "other-epoch");
  foreign.database_id = "other-db";
  ASSERT_TRUE(store.Upload(foreign).ok());

  auto report = VerifyLedgerAgainstStore(db.get(), store);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_TRUE(report->has_digest_coverage);

  // Tampering detected through the store-driven flow too.
  TableStore* t = db->GetStoreForTesting("t");
  Row* row = t->mutable_clustered()->MutableGet({Value::BigInt(2)});
  (*row)[1] = Value::Varchar("FORGED");
  report = VerifyLedgerAgainstStore(db.get(), store);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST_F(UploadFlowTest, SiblingIncarnationDigestsToleratedButRollbackCaught) {
  LedgerDatabaseOptions options;
  options.data_dir = Path("db");
  options.database_id = "pitrdb";
  options.block_size = 2;
  auto opened = LedgerDatabase::Open(options);
  ASSERT_TRUE(opened.ok());
  auto db = std::move(*opened);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  InMemoryDigestStore store;
  for (int i = 1; i <= 4; i++) {
    ASSERT_TRUE(InsertOne(db.get(), "t", i, "x").ok());
    ASSERT_TRUE(GenerateAndUploadDigest(db.get(), &store).ok());
  }
  ASSERT_TRUE(db->Checkpoint().ok());

  // A restored sibling diverges and uploads digests for blocks the
  // original never has — the original must still verify cleanly.
  LedgerDatabaseOptions restore_options = options;
  restore_options.data_dir = Path("restored");
  auto restored = LedgerDatabase::Restore(Path("db"), restore_options);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(InsertOne(restored->get(), "t", 100, "diverged").ok());
  ASSERT_TRUE(GenerateAndUploadDigest(restored->get(), &store).ok());

  auto report = VerifyLedgerAgainstStore(db.get(), store);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();

  // But a SAME-incarnation digest referencing a missing block (rollback
  // attack: the attacker restored old state under the same identity) is
  // still flagged.
  DatabaseDigest forged;
  forged.database_id = "pitrdb";
  forged.database_create_time = db->create_time();
  forged.block_id = 9999;
  forged.generated_at_micros = db->NowMicros();
  ASSERT_TRUE(store.Upload(forged).ok());
  report = VerifyLedgerAgainstStore(db.get(), store);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST_F(UploadFlowTest, StatsReflectActivity) {
  auto db = OpenTestDb(/*block_size=*/2);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  for (int i = 1; i <= 5; i++)
    ASSERT_TRUE(InsertOne(db.get(), "t", i, "x").ok());
  DatabaseStats stats = db->GetStats();
  EXPECT_GE(stats.committed_transactions, 5u);
  EXPECT_EQ(stats.table_count, 1u);
  EXPECT_EQ(stats.ledger_table_count, 1u);
  EXPECT_EQ(stats.live_rows, 5u);
  EXPECT_EQ(stats.history_rows, 0u);
  EXPECT_GE(stats.closed_blocks, 1u);
  EXPECT_NE(stats.ToString().find("live_rows=5"), std::string::npos);
}

TEST_F(UploadFlowTest, PeriodicUploaderUploadsOnCadence) {
  auto db = OpenTestDb(/*block_size=*/4);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  InMemoryDigestStore store;
  {
    PeriodicDigestUploader uploader(db.get(), &store,
                                    std::chrono::milliseconds(5));
    for (int i = 0; i < 20; i++) {
      ASSERT_TRUE(InsertOne(db.get(), "t", i, "x").ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Wait until at least two digests are out.
    for (int spin = 0; spin < 500 && uploader.uploads() < 2; spin++)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GE(uploader.uploads(), 2u);
    EXPECT_TRUE(uploader.last_error().ok());
  }
  // Digests chain correctly end to end.
  auto digests = store.ListAll();
  ASSERT_TRUE(digests.ok());
  ASSERT_GE(digests->size(), 2u);
  for (size_t i = 1; i < digests->size(); i++) {
    auto derivable = db->database_ledger()->VerifyDigestChain(
        (*digests)[i - 1], (*digests)[i]);
    ASSERT_TRUE(derivable.ok());
    EXPECT_TRUE(*derivable);
  }
}

TEST_F(UploadFlowTest, PeriodicUploaderRecoversFromTransientStoreError) {
  // Regression: the uploader used to latch-and-stop on ANY upload error, so
  // one network blip silently ended digest protection forever. Transient
  // errors must keep the cadence alive.
  auto db = OpenTestDb(/*block_size=*/4);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  InMemoryDigestStore store;
  FaultyDigestStore flaky(&store, /*seed=*/TestSeed());
  flaky.FailUploads(1);  // the first attempt times out, then the store heals

  ASSERT_TRUE(InsertOne(db.get(), "t", 1, "x").ok());
  PeriodicDigestUploader uploader(db.get(), &flaky,
                                  std::chrono::milliseconds(2));
  for (int spin = 0; spin < 500 && uploader.uploads() < 1; spin++)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(uploader.uploads(), 1u);           // cadence survived the blip
  EXPECT_TRUE(uploader.last_error().ok());     // cleared by the success
  EXPECT_GE(flaky.injected_failures(), 1u);    // the blip actually fired
  EXPECT_GE(store.ListAll()->size(), 1u);
}

TEST_F(UploadFlowTest, PeriodicUploaderLatchesForkError) {
  auto db = OpenTestDb(/*block_size=*/4);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  InMemoryDigestStore store;
  ASSERT_TRUE(InsertOne(db.get(), "t", 1, "x").ok());
  auto first = GenerateAndUploadDigest(db.get(), &store);
  ASSERT_TRUE(first.ok());

  // Fork the chain before starting the uploader.
  auto block = db->database_ledger()->FindBlock(first->block_id);
  ASSERT_TRUE(block.ok());
  BlockRecord forged = *block;
  forged.transactions_root.bytes[1] ^= 1;
  ASSERT_TRUE(db->database_ledger()
                  ->blocks_table_for_testing()
                  ->Update(BlockRecordToRow(forged))
                  .ok());
  ASSERT_TRUE(InsertOne(db.get(), "t", 2, "y").ok());

  PeriodicDigestUploader uploader(db.get(), &store,
                                  std::chrono::milliseconds(2));
  for (int spin = 0; spin < 500 && uploader.last_error().ok(); spin++)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(uploader.last_error().IsIntegrityViolation());
  EXPECT_EQ(store.ListAll()->size(), 1u);  // nothing after the fork
}

}  // namespace
}  // namespace sqlledger
