// Tier-1 smoke for the differential simulator (src/sim/): short seeded runs
// with the full adversarial mix must agree with the reference model, the
// same seed must reproduce byte-for-byte, and a deliberately planted
// hash-ordering bug must be caught within one run — proving the oracle
// actually bites. The heavyweight sweeps live in sim_harness_test (label
// "long") and the nightly CI job.

#include <gtest/gtest.h>

#include "sim/driver.h"
#include "test_util.h"

namespace sqlledger {
namespace sim {
namespace {

class SimSmokeTest : public TempDirTest {
 protected:
  SimConfig MakeConfig(uint64_t seed, size_t ops) {
    SimConfig config;
    config.seed = seed;
    config.gen.ops = ops;
    config.data_dir = Path("sim");
    return config;
  }
};

TEST_F(SimSmokeTest, MixedAdversarialRunsMatchModel) {
  for (uint64_t s = 0; s < 2; s++) {
    SimConfig config = MakeConfig(TestCaseSeed(s + 1), 300);
    SimResult result = RunSim(config);
    EXPECT_TRUE(result.ok)
        << "seed " << config.seed << " (SQLLEDGER_TEST_SEED=" << TestSeed()
        << ") diverged @" << result.divergent_op << ": " << result.message;
    EXPECT_FALSE(result.final_digest_hex.empty());
    EXPECT_GT(result.commits, 0u);
  }
}

TEST_F(SimSmokeTest, SameSeedReproducesByteForByte) {
  SimConfig config = MakeConfig(TestCaseSeed(3), 300);
  SimResult first = RunSim(config);
  SimResult second = RunSim(config);
  ASSERT_TRUE(first.ok) << first.message;
  ASSERT_TRUE(second.ok) << second.message;
  EXPECT_EQ(first.outcome_fingerprint, second.outcome_fingerprint);
  EXPECT_EQ(first.final_digest_hex, second.final_digest_hex);
  // The observability layer replays too: metrics snapshot + trace export
  // hash identically under the pinned metrics clock.
  ASSERT_FALSE(first.metrics_fingerprint.empty());
  EXPECT_EQ(first.metrics_fingerprint, second.metrics_fingerprint);
}

TEST_F(SimSmokeTest, StoreOutageWindowsCatchUpAndAgree) {
  // Outage-heavy mix: the driver asserts after every recovery and outage
  // end that the remote store's digests are an order-preserving match for
  // what the pipeline accepted, and the epilogue asserts staleness fell
  // back to zero when the final digest was queued.
  size_t outage_runs = 0;
  for (uint64_t s = 0; s < 3; s++) {
    SimConfig config = MakeConfig(TestCaseSeed(10 + s), 400);
    SimResult result = RunSim(config);
    EXPECT_TRUE(result.ok)
        << "seed " << config.seed << " (SQLLEDGER_TEST_SEED=" << TestSeed()
        << ") diverged @" << result.divergent_op << ": " << result.message;
    if (result.store_outages > 0) outage_runs++;
  }
  EXPECT_GT(outage_runs, 0u) << "no run exercised a digest-store outage";
}

TEST_F(SimSmokeTest, OutagesDisabledStillRuns) {
  SimConfig config = MakeConfig(TestCaseSeed(20), 300);
  config.gen.enable_store_outage = false;
  SimResult result = RunSim(config);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_EQ(result.store_outages, 0u);
}

TEST_F(SimSmokeTest, PlantedHashOrderBugIsCaught) {
  SimConfig config = MakeConfig(TestCaseSeed(4), 600);
  config.break_hash_order = true;
  SimResult result = RunSim(config);
  EXPECT_FALSE(result.ok)
      << "planted hash-order bug survived a full smoke run (seed "
      << config.seed << ")";
}

}  // namespace
}  // namespace sim
}  // namespace sqlledger
