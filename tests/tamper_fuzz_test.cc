// Property test: *any* random storage-level mutation of ledger-protected
// state — row cells, system columns, history rows, row deletion or
// injection, transaction entries, block records — must be caught by
// verification. This is the paper's core guarantee (§2.3) exercised
// adversarially: the verifier's false-negative rate over random attacks
// must be zero.

#include <gtest/gtest.h>

#include "ledger/verifier.h"
#include "test_util.h"
#include "util/random.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class TamperFuzz : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    db_ = OpenTestDb(/*block_size=*/8);
    ASSERT_TRUE(db_->CreateTable("accounts", AccountSchema(),
                                 TableKind::kUpdateable)
                    .ok());
    Random rng(static_cast<uint64_t>(GetParam()) * 7919);
    // Mixed workload: inserts, updates, deletes.
    for (int i = 0; i < 40; i++) {
      auto txn = db_->Begin("app");
      ASSERT_TRUE(txn.ok());
      std::string name = "acct" + std::to_string(i);
      ASSERT_TRUE(
          db_->Insert(*txn, "accounts", {VS(name), VB(i * 10)}).ok());
      if (i > 2 && rng.Bernoulli(0.5)) {
        ASSERT_TRUE(db_->Update(*txn, "accounts",
                                {VS("acct" + std::to_string(i - 1)),
                                 VB(rng.UniformRange(0, 1000))})
                        .ok());
      }
      if (i > 4 && rng.Bernoulli(0.2)) {
        ASSERT_TRUE(db_->Delete(*txn, "accounts",
                                {VS("acct" + std::to_string(i - 3))})
                        .ok());
      }
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
    auto digest = db_->GenerateDigest();
    ASSERT_TRUE(digest.ok());
    digest_ = *digest;
  }

  bool VerificationFails() {
    auto report = VerifyLedger(db_.get(), {digest_});
    EXPECT_TRUE(report.ok());
    return !report->ok();
  }

  /// Picks a random row of a random store and returns (store, key).
  bool PickRandomRow(Random* rng, TableStore* store, KeyTuple* key) {
    if (store == nullptr || store->row_count() == 0) return false;
    size_t target = rng->Uniform(store->row_count());
    size_t i = 0;
    for (BTree::Iterator it = store->Scan(); it.Valid(); it.Next(), i++) {
      if (i == target) {
        *key = it.key();
        return true;
      }
    }
    return false;
  }

  std::unique_ptr<LedgerDatabase> db_;
  DatabaseDigest digest_;
};

TEST_P(TamperFuzz, EveryRandomMutationIsDetected) {
  Random rng(static_cast<uint64_t>(GetParam()) * 104729 + 17);
  auto ref = db_->GetTableRef("accounts");
  ASSERT_TRUE(ref.ok());

  uint64_t kind = rng.Uniform(8);
  KeyTuple key;
  switch (kind) {
    case 0: {  // edit a live user cell
      ASSERT_TRUE(PickRandomRow(&rng, ref->main, &key));
      Row* row = ref->main->mutable_clustered()->MutableGet(key);
      (*row)[1] = VB(row->at(1).AsInt64() ^ (1 << rng.Uniform(20)));
      break;
    }
    case 1: {  // edit a history cell
      if (ref->history->row_count() == 0) {
        ASSERT_TRUE(PickRandomRow(&rng, ref->main, &key));
        Row* row = ref->main->mutable_clustered()->MutableGet(key);
        (*row)[1] = VB(-1);
      } else {
        ASSERT_TRUE(PickRandomRow(&rng, ref->history, &key));
        Row* row = ref->history->mutable_clustered()->MutableGet(key);
        (*row)[1] = VB(row->at(1).AsInt64() + 1);
      }
      break;
    }
    case 2: {  // delete a live row
      ASSERT_TRUE(PickRandomRow(&rng, ref->main, &key));
      ASSERT_TRUE(ref->main->Delete(key).ok());
      break;
    }
    case 3: {  // delete a history row (erase an audit trace)
      TableStore* store =
          ref->history->row_count() > 0 ? ref->history : ref->main;
      ASSERT_TRUE(PickRandomRow(&rng, store, &key));
      ASSERT_TRUE(store->Delete(key).ok());
      break;
    }
    case 4: {  // inject a forged row under a random transaction id
      ASSERT_TRUE(PickRandomRow(&rng, ref->main, &key));
      Row forged = *ref->main->Get(key);
      forged[0] = VS("forged" + std::to_string(rng.Next() % 100000));
      forged[ref->start_txn_ord] = VB(rng.UniformRange(1, 60));
      forged[ref->start_seq_ord] = VB(rng.UniformRange(0, 5));
      ASSERT_TRUE(ref->main->Insert(forged).ok());
      break;
    }
    case 5: {  // re-stamp a row's transaction attribution
      ASSERT_TRUE(PickRandomRow(&rng, ref->main, &key));
      Row* row = ref->main->mutable_clustered()->MutableGet(key);
      (*row)[ref->start_txn_ord] =
          VB(row->at(ref->start_txn_ord).AsInt64() + 1);
      break;
    }
    case 6: {  // tamper with a transaction entry's recorded root
      ASSERT_TRUE(db_->database_ledger()->DrainQueue().ok());
      TableStore* txns =
          db_->database_ledger()->transactions_table_for_testing();
      ASSERT_TRUE(PickRandomRow(&rng, txns, &key));
      Row* row = txns->mutable_clustered()->MutableGet(key);
      std::string roots = (*row)[5].string_value();
      if (roots.size() > 6) {
        std::vector<uint8_t> bytes(roots.begin(), roots.end());
        bytes[rng.Uniform(bytes.size() - 1) + 1] ^= 0x40;
        (*row)[5] = Value::Varbinary(bytes);
      } else {
        // Entry with no roots: delete it instead.
        ASSERT_TRUE(txns->Delete(key).ok());
      }
      break;
    }
    case 7: {  // tamper with a block record
      TableStore* blocks =
          db_->database_ledger()->blocks_table_for_testing();
      ASSERT_TRUE(PickRandomRow(&rng, blocks, &key));
      Row* row = blocks->mutable_clustered()->MutableGet(key);
      // Flip a bit in either the previous hash or the transactions root.
      size_t col = rng.Bernoulli(0.5) ? 1 : 2;
      std::vector<uint8_t> bytes((*row)[col].string_value().begin(),
                                 (*row)[col].string_value().end());
      bytes[rng.Uniform(bytes.size())] ^= 0x01;
      (*row)[col] = Value::Varbinary(bytes);
      break;
    }
  }
  EXPECT_TRUE(VerificationFails())
      << "undetected tampering of kind " << kind << " (seed " << GetParam()
      << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TamperFuzz, ::testing::Range(1, 33));

}  // namespace
}  // namespace sqlledger
