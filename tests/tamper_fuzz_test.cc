// Property test: *any* random storage-level mutation of ledger-protected
// state — row cells, system columns, history rows, row deletion or
// injection, transaction entries, block records — must be caught by
// verification. This is the paper's core guarantee (§2.3) exercised
// adversarially: the verifier's false-negative rate over random attacks
// must be zero.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "ledger/digest_store.h"
#include "ledger/verifier.h"
#include "test_util.h"
#include "util/random.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class TamperFuzz : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    db_ = OpenTestDb(/*block_size=*/8);
    ASSERT_TRUE(db_->CreateTable("accounts", AccountSchema(),
                                 TableKind::kUpdateable)
                    .ok());
    Random rng(TestCaseSeed(static_cast<uint64_t>(GetParam()) * 7919));
    // Mixed workload: inserts, updates, deletes.
    for (int i = 0; i < 40; i++) {
      auto txn = db_->Begin("app");
      ASSERT_TRUE(txn.ok());
      std::string name = "acct" + std::to_string(i);
      ASSERT_TRUE(
          db_->Insert(*txn, "accounts", {VS(name), VB(i * 10)}).ok());
      if (i > 2 && rng.Bernoulli(0.5)) {
        ASSERT_TRUE(db_->Update(*txn, "accounts",
                                {VS("acct" + std::to_string(i - 1)),
                                 VB(rng.UniformRange(0, 1000))})
                        .ok());
      }
      if (i > 4 && rng.Bernoulli(0.2)) {
        ASSERT_TRUE(db_->Delete(*txn, "accounts",
                                {VS("acct" + std::to_string(i - 3))})
                        .ok());
      }
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
    auto digest = db_->GenerateDigest();
    ASSERT_TRUE(digest.ok());
    digest_ = *digest;
  }

  bool VerificationFails() {
    auto report = VerifyLedger(db_.get(), {digest_});
    EXPECT_TRUE(report.ok());
    return !report->ok();
  }

  /// Picks a random row of a random store and returns (store, key).
  bool PickRandomRow(Random* rng, TableStore* store, KeyTuple* key) {
    if (store == nullptr || store->row_count() == 0) return false;
    size_t target = rng->Uniform(store->row_count());
    size_t i = 0;
    for (BTree::Iterator it = store->Scan(); it.Valid(); it.Next(), i++) {
      if (i == target) {
        *key = it.key();
        return true;
      }
    }
    return false;
  }

  std::unique_ptr<LedgerDatabase> db_;
  DatabaseDigest digest_;
};

TEST_P(TamperFuzz, EveryRandomMutationIsDetected) {
  Random rng(TestCaseSeed(static_cast<uint64_t>(GetParam()) * 104729 + 17));
  auto ref = db_->GetTableRef("accounts");
  ASSERT_TRUE(ref.ok());

  uint64_t kind = rng.Uniform(8);
  KeyTuple key;
  switch (kind) {
    case 0: {  // edit a live user cell
      ASSERT_TRUE(PickRandomRow(&rng, ref->main, &key));
      Row* row = ref->main->mutable_clustered()->MutableGet(key);
      (*row)[1] = VB(row->at(1).AsInt64() ^ (1 << rng.Uniform(20)));
      break;
    }
    case 1: {  // edit a history cell
      if (ref->history->row_count() == 0) {
        ASSERT_TRUE(PickRandomRow(&rng, ref->main, &key));
        Row* row = ref->main->mutable_clustered()->MutableGet(key);
        (*row)[1] = VB(-1);
      } else {
        ASSERT_TRUE(PickRandomRow(&rng, ref->history, &key));
        Row* row = ref->history->mutable_clustered()->MutableGet(key);
        (*row)[1] = VB(row->at(1).AsInt64() + 1);
      }
      break;
    }
    case 2: {  // delete a live row
      ASSERT_TRUE(PickRandomRow(&rng, ref->main, &key));
      ASSERT_TRUE(ref->main->Delete(key).ok());
      break;
    }
    case 3: {  // delete a history row (erase an audit trace)
      TableStore* store =
          ref->history->row_count() > 0 ? ref->history : ref->main;
      ASSERT_TRUE(PickRandomRow(&rng, store, &key));
      ASSERT_TRUE(store->Delete(key).ok());
      break;
    }
    case 4: {  // inject a forged row under a random transaction id
      ASSERT_TRUE(PickRandomRow(&rng, ref->main, &key));
      Row forged = *ref->main->Get(key);
      forged[0] = VS("forged" + std::to_string(rng.Next() % 100000));
      forged[ref->start_txn_ord] = VB(rng.UniformRange(1, 60));
      forged[ref->start_seq_ord] = VB(rng.UniformRange(0, 5));
      ASSERT_TRUE(ref->main->Insert(forged).ok());
      break;
    }
    case 5: {  // re-stamp a row's transaction attribution
      ASSERT_TRUE(PickRandomRow(&rng, ref->main, &key));
      Row* row = ref->main->mutable_clustered()->MutableGet(key);
      (*row)[ref->start_txn_ord] =
          VB(row->at(ref->start_txn_ord).AsInt64() + 1);
      break;
    }
    case 6: {  // tamper with a transaction entry's recorded root
      ASSERT_TRUE(db_->database_ledger()->DrainQueue().ok());
      TableStore* txns =
          db_->database_ledger()->transactions_table_for_testing();
      ASSERT_TRUE(PickRandomRow(&rng, txns, &key));
      Row* row = txns->mutable_clustered()->MutableGet(key);
      std::string roots = (*row)[5].string_value();
      if (roots.size() > 6) {
        std::vector<uint8_t> bytes(roots.begin(), roots.end());
        bytes[rng.Uniform(bytes.size() - 1) + 1] ^= 0x40;
        (*row)[5] = Value::Varbinary(bytes);
      } else {
        // Entry with no roots: delete it instead.
        ASSERT_TRUE(txns->Delete(key).ok());
      }
      break;
    }
    case 7: {  // tamper with a block record
      TableStore* blocks =
          db_->database_ledger()->blocks_table_for_testing();
      ASSERT_TRUE(PickRandomRow(&rng, blocks, &key));
      Row* row = blocks->mutable_clustered()->MutableGet(key);
      // Flip a bit in either the previous hash or the transactions root.
      size_t col = rng.Bernoulli(0.5) ? 1 : 2;
      std::vector<uint8_t> bytes((*row)[col].string_value().begin(),
                                 (*row)[col].string_value().end());
      bytes[rng.Uniform(bytes.size())] ^= 0x01;
      (*row)[col] = Value::Varbinary(bytes);
      break;
    }
  }
  EXPECT_TRUE(VerificationFails())
      << "undetected tampering of kind " << kind << " (case " << GetParam()
      << ", SQLLEDGER_TEST_SEED=" << TestSeed() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TamperFuzz, ::testing::Range(1, 33));

// The same zero-false-negative property for the OTHER side of verification:
// the trusted digest store itself. Any storage-level mutation of an on-disk
// digest blob — bit flips anywhere in the file, truncation to any prefix —
// must surface as an error or a violation, never as a clean report built on
// a corrupted digest.
class DigestBlobTamperFuzz : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("sl_blobfuzz_" + std::to_string(::getpid()) + "_" +
             std::to_string(GetParam()));
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);

    db_ = OpenTestDb(/*block_size=*/4);
    ASSERT_TRUE(db_->CreateTable("accounts", AccountSchema(),
                                 TableKind::kUpdateable)
                    .ok());
    auto store = ImmutableBlobDigestStore::Open(root_.string());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    for (int i = 0; i < 9; i++) {
      auto txn = db_->Begin("app");
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(db_->Insert(*txn, "accounts",
                              {VS("acct" + std::to_string(i)), VB(i * 10)})
                      .ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
      if (i % 3 == 2) {
        ASSERT_TRUE(GenerateAndUploadDigest(db_.get(), store_.get()).ok());
      }
    }
  }

  void TearDown() override {
    std::error_code ec;
    for (auto it = std::filesystem::recursive_directory_iterator(
             root_, std::filesystem::directory_options::skip_permission_denied,
             ec);
         it != std::filesystem::recursive_directory_iterator(); ++it) {
      std::filesystem::permissions(it->path(),
                                   std::filesystem::perms::owner_all,
                                   std::filesystem::perm_options::add, ec);
    }
    std::filesystem::remove_all(root_, ec);
  }

  std::vector<std::filesystem::path> BlobFiles() {
    std::vector<std::filesystem::path> out;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(root_)) {
      if (entry.is_regular_file()) out.push_back(entry.path());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::filesystem::path root_;
  std::unique_ptr<LedgerDatabase> db_;
  std::unique_ptr<ImmutableBlobDigestStore> store_;
};

TEST_P(DigestBlobTamperFuzz, EveryBlobMutationIsDetected) {
  // Untampered baseline: the store-driven verification is clean.
  auto clean = VerifyLedgerAgainstStore(db_.get(), *store_);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_TRUE(clean->ok()) << clean->Summary();

  auto blobs = BlobFiles();
  ASSERT_GE(blobs.size(), 3u);
  Random rng(TestCaseSeed(static_cast<uint64_t>(GetParam()) * 2654435761u + 11));
  const std::filesystem::path& victim = blobs[rng.Uniform(blobs.size())];
  // Blobs are stored read-only; the storage-level attacker of §2.5.2 is
  // not bound by the access layer's permissions.
  std::filesystem::permissions(victim, std::filesystem::perms::owner_all,
                               std::filesystem::perm_options::add);
  const auto size = std::filesystem::file_size(victim);
  ASSERT_GT(size, 0u);

  uint64_t kind = rng.Uniform(3);
  switch (kind) {
    case 0: {  // flip one bit anywhere in the blob
      std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
      size_t offset = rng.Uniform(size);
      f.seekg(static_cast<std::streamoff>(offset));
      char byte = 0;
      f.get(byte);
      f.seekp(static_cast<std::streamoff>(offset));
      f.put(static_cast<char>(byte ^ (1 << rng.Uniform(8))));
      break;
    }
    case 1:  // truncate to a random proper prefix
      std::filesystem::resize_file(victim, rng.Uniform(size));
      break;
    case 2:  // truncate to nothing
      std::filesystem::resize_file(victim, 0);
      break;
  }

  auto report = VerifyLedgerAgainstStore(db_.get(), *store_);
  EXPECT_FALSE(report.ok() && report->ok())
      << "undetected digest-blob tampering of kind " << kind << " on "
      << victim << " (case " << GetParam()
      << ", SQLLEDGER_TEST_SEED=" << TestSeed() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DigestBlobTamperFuzz, ::testing::Range(1, 17));

}  // namespace
}  // namespace sqlledger
