// TableStore unit tests: secondary index maintenance across DML, unique
// constraints, index builds on populated tables, and ExtendRows.

#include <gtest/gtest.h>

#include "storage/table_store.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

Schema ThreeColSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("name", DataType::kVarchar, true, 32);
  s.AddColumn("score", DataType::kBigInt, true);
  s.SetPrimaryKey({0});
  return s;
}

TEST(TableStoreTest, InsertGetDelete) {
  TableStore t(100, "t", ThreeColSchema());
  ASSERT_TRUE(t.Insert({VB(1), VS("a"), VB(10)}).ok());
  EXPECT_EQ(t.row_count(), 1u);
  const Row* row = t.Get({VB(1)});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1].string_value(), "a");
  EXPECT_TRUE(t.Delete({VB(1)}).ok());
  EXPECT_EQ(t.Get({VB(1)}), nullptr);
  EXPECT_TRUE(t.Delete({VB(1)}).IsNotFound());
}

TEST(TableStoreTest, ValidatesRows) {
  TableStore t(100, "t", ThreeColSchema());
  EXPECT_FALSE(t.Insert({VB(1), VS("a")}).ok());                    // arity
  EXPECT_FALSE(t.Insert({VS("x"), VS("a"), VB(1)}).ok());           // type
  EXPECT_FALSE(
      t.Insert({Value::Null(DataType::kBigInt), VS("a"), VB(1)}).ok());
  EXPECT_FALSE(
      t.Insert({VB(1), VS(std::string(40, 'x')), VB(1)}).ok());     // length
}

TEST(TableStoreTest, DuplicatePrimaryKeyRejectedAtomically) {
  TableStore t(100, "t", ThreeColSchema());
  ASSERT_TRUE(t.CreateIndex("by_score", {2}, false).ok());
  ASSERT_TRUE(t.Insert({VB(1), VS("a"), VB(10)}).ok());
  EXPECT_EQ(t.Insert({VB(1), VS("b"), VB(20)}).code(),
            StatusCode::kAlreadyExists);
  // The failed insert must not have leaked an index entry.
  EXPECT_EQ(t.FindIndex("by_score")->tree.size(), 1u);
}

TEST(TableStoreTest, SecondaryIndexFollowsUpdates) {
  TableStore t(100, "t", ThreeColSchema());
  ASSERT_TRUE(t.CreateIndex("by_score", {2}, false).ok());
  ASSERT_TRUE(t.Insert({VB(1), VS("a"), VB(10)}).ok());
  ASSERT_TRUE(t.Insert({VB(2), VS("b"), VB(20)}).ok());

  ASSERT_TRUE(t.Update({VB(1), VS("a"), VB(99)}).ok());
  SecondaryIndex* idx = t.FindIndex("by_score");
  ASSERT_EQ(idx->tree.size(), 2u);
  // First index entry by score should now be 20 (the old 10 is gone).
  BTree::Iterator it = idx->tree.Begin();
  EXPECT_EQ(it.key()[0].AsInt64(), 20);
  it.Next();
  EXPECT_EQ(it.key()[0].AsInt64(), 99);

  ASSERT_TRUE(t.Delete({VB(2)}).ok());
  EXPECT_EQ(idx->tree.size(), 1u);
}

TEST(TableStoreTest, NonUniqueIndexAllowsDuplicateValues) {
  TableStore t(100, "t", ThreeColSchema());
  ASSERT_TRUE(t.CreateIndex("by_score", {2}, false).ok());
  ASSERT_TRUE(t.Insert({VB(1), VS("a"), VB(10)}).ok());
  ASSERT_TRUE(t.Insert({VB(2), VS("b"), VB(10)}).ok());
  EXPECT_EQ(t.FindIndex("by_score")->tree.size(), 2u);
}

TEST(TableStoreTest, UniqueIndexEnforced) {
  TableStore t(100, "t", ThreeColSchema());
  ASSERT_TRUE(t.CreateIndex("uniq_name", {1}, true).ok());
  ASSERT_TRUE(t.Insert({VB(1), VS("alice"), VB(10)}).ok());
  EXPECT_EQ(t.Insert({VB(2), VS("alice"), VB(20)}).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(t.Insert({VB(2), VS("bob"), VB(20)}).ok());
}

TEST(TableStoreTest, UniqueIndexBuildFailsOnDuplicates) {
  TableStore t(100, "t", ThreeColSchema());
  ASSERT_TRUE(t.Insert({VB(1), VS("dup"), VB(10)}).ok());
  ASSERT_TRUE(t.Insert({VB(2), VS("dup"), VB(20)}).ok());
  EXPECT_FALSE(t.CreateIndex("uniq_name", {1}, true).ok());
}

TEST(TableStoreTest, IndexBuildOnPopulatedTable) {
  TableStore t(100, "t", ThreeColSchema());
  for (int64_t i = 0; i < 100; i++) {
    ASSERT_TRUE(
        t.Insert({VB(i), VS("n" + std::to_string(i)), VB(i % 7)}).ok());
  }
  ASSERT_TRUE(t.CreateIndex("by_score", {2}, false).ok());
  EXPECT_EQ(t.FindIndex("by_score")->tree.size(), 100u);
  // Entries are ordered by (score, pk).
  int64_t prev_score = -1;
  for (BTree::Iterator it = t.FindIndex("by_score")->tree.Begin(); it.Valid();
       it.Next()) {
    EXPECT_GE(it.key()[0].AsInt64(), prev_score);
    prev_score = it.key()[0].AsInt64();
  }
}

TEST(TableStoreTest, DropIndex) {
  TableStore t(100, "t", ThreeColSchema());
  ASSERT_TRUE(t.CreateIndex("by_score", {2}, false).ok());
  ASSERT_TRUE(t.DropIndex("by_score").ok());
  EXPECT_EQ(t.FindIndex("by_score"), nullptr);
  EXPECT_TRUE(t.DropIndex("by_score").IsNotFound());
}

TEST(TableStoreTest, IndexOrdinalOutOfRangeRejected) {
  TableStore t(100, "t", ThreeColSchema());
  EXPECT_FALSE(t.CreateIndex("bad", {17}, false).ok());
}

TEST(TableStoreTest, ExtendRowsAppendsCell) {
  TableStore t(100, "t", ThreeColSchema());
  for (int64_t i = 0; i < 10; i++)
    ASSERT_TRUE(t.Insert({VB(i), VS("x"), VB(i)}).ok());
  t.mutable_schema()->AddColumn("extra", DataType::kInt, true);
  t.ExtendRows(Value::Null(DataType::kInt));
  for (BTree::Iterator it = t.Scan(); it.Valid(); it.Next()) {
    ASSERT_EQ(it.value().size(), 4u);
    EXPECT_TRUE(it.value()[3].is_null());
  }
  // New inserts with the new arity validate.
  ASSERT_TRUE(t.Insert({VB(100), VS("y"), VB(1), Value::Int(5)}).ok());
}

TEST(TableStoreTest, ScanAndSeek) {
  TableStore t(100, "t", ThreeColSchema());
  for (int64_t i = 0; i < 50; i += 5)
    ASSERT_TRUE(t.Insert({VB(i), VS("x"), VB(i)}).ok());
  BTree::Iterator it = t.Seek({VB(12)});
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt64(), 15);
  size_t count = 0;
  for (BTree::Iterator scan = t.Scan(); scan.Valid(); scan.Next()) count++;
  EXPECT_EQ(count, 10u);
}

}  // namespace
}  // namespace sqlledger
