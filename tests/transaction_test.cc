// Transaction layer tests: undo on abort, savepoints with Merkle state
// restore (paper §3.2.1), sequence numbering, and the lock manager.

#include <gtest/gtest.h>

#include <thread>

#include "storage/table_store.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "test_util.h"

namespace sqlledger {
namespace {

TableStore MakeStore() { return TableStore(100, "t", SimpleUserSchema()); }

Row R(int64_t id, const std::string& payload) {
  return {Value::BigInt(id), Value::Varchar(payload)};
}
KeyTuple K(int64_t id) { return {Value::BigInt(id)}; }

TEST(TransactionTest, SequenceNumbersAreMonotonic) {
  Transaction txn(1, "u");
  EXPECT_EQ(txn.NextSequence(), 0u);
  EXPECT_EQ(txn.NextSequence(), 1u);
  EXPECT_EQ(txn.sequence_count(), 2u);
}

TEST(TransactionTest, AbortUndoesInsert) {
  TableStore store = MakeStore();
  Transaction txn(1, "u");
  ASSERT_TRUE(store.Insert(R(1, "a")).ok());
  txn.RecordInsert(&store, K(1), R(1, "a"));
  txn.Abort();
  EXPECT_EQ(store.Get(K(1)), nullptr);
  EXPECT_EQ(txn.state(), Transaction::State::kAborted);
}

TEST(TransactionTest, AbortUndoesUpdateAndDelete) {
  TableStore store = MakeStore();
  ASSERT_TRUE(store.Insert(R(1, "old")).ok());
  ASSERT_TRUE(store.Insert(R(2, "gone")).ok());

  Transaction txn(1, "u");
  Row old1 = *store.Get(K(1));
  ASSERT_TRUE(store.Update(R(1, "new")).ok());
  txn.RecordUpdate(&store, K(1), old1, R(1, "new"));

  Row old2 = *store.Get(K(2));
  ASSERT_TRUE(store.Delete(K(2)).ok());
  txn.RecordDelete(&store, K(2), old2);

  txn.Abort();
  EXPECT_EQ((*store.Get(K(1)))[1].string_value(), "old");
  ASSERT_NE(store.Get(K(2)), nullptr);
  EXPECT_EQ((*store.Get(K(2)))[1].string_value(), "gone");
}

TEST(TransactionTest, AbortIsIdempotent) {
  TableStore store = MakeStore();
  Transaction txn(1, "u");
  ASSERT_TRUE(store.Insert(R(1, "a")).ok());
  txn.RecordInsert(&store, K(1), R(1, "a"));
  txn.Abort();
  txn.Abort();  // no double-undo
  EXPECT_EQ(store.Get(K(1)), nullptr);
}

TEST(TransactionTest, SavepointRollbackUndoesTail) {
  TableStore store = MakeStore();
  Transaction txn(1, "u");

  ASSERT_TRUE(store.Insert(R(1, "a")).ok());
  txn.RecordInsert(&store, K(1), R(1, "a"));
  ASSERT_TRUE(txn.CreateSavepoint("sp").ok());

  ASSERT_TRUE(store.Insert(R(2, "b")).ok());
  txn.RecordInsert(&store, K(2), R(2, "b"));

  ASSERT_TRUE(txn.RollbackToSavepoint("sp").ok());
  EXPECT_NE(store.Get(K(1)), nullptr);
  EXPECT_EQ(store.Get(K(2)), nullptr);
  EXPECT_TRUE(txn.active());
  EXPECT_EQ(txn.ops().size(), 1u);
}

TEST(TransactionTest, SavepointRestoresMerkleAndSequence) {
  Transaction txn(1, "u");
  MerkleBuilder* merkle = txn.MerkleForTable(100);
  merkle->AddLeaf(Slice(std::string("v1")));
  uint64_t seq_before = txn.NextSequence();
  Hash256 root_before = merkle->Root();
  ASSERT_TRUE(txn.CreateSavepoint("sp").ok());

  txn.MerkleForTable(100)->AddLeaf(Slice(std::string("v2")));
  txn.MerkleForTable(200)->AddLeaf(Slice(std::string("other")));
  txn.NextSequence();
  txn.NextSequence();

  ASSERT_TRUE(txn.RollbackToSavepoint("sp").ok());
  EXPECT_EQ(txn.MerkleForTable(100)->Root(), root_before);
  EXPECT_EQ(txn.NextSequence(), seq_before + 1);
  // Table 200 was first touched after the savepoint: its tree is gone.
  EXPECT_EQ(txn.TableRoots().size(), 1u);
}

TEST(TransactionTest, NestedSavepoints) {
  TableStore store = MakeStore();
  Transaction txn(1, "u");

  ASSERT_TRUE(txn.CreateSavepoint("outer").ok());
  ASSERT_TRUE(store.Insert(R(1, "a")).ok());
  txn.RecordInsert(&store, K(1), R(1, "a"));
  ASSERT_TRUE(txn.CreateSavepoint("inner").ok());
  ASSERT_TRUE(store.Insert(R(2, "b")).ok());
  txn.RecordInsert(&store, K(2), R(2, "b"));

  ASSERT_TRUE(txn.RollbackToSavepoint("inner").ok());
  EXPECT_EQ(store.Get(K(2)), nullptr);
  EXPECT_NE(store.Get(K(1)), nullptr);

  // Rolling back to "inner" again still works (savepoint survives).
  ASSERT_TRUE(txn.RollbackToSavepoint("inner").ok());

  ASSERT_TRUE(txn.RollbackToSavepoint("outer").ok());
  EXPECT_EQ(store.Get(K(1)), nullptr);
  // "inner" was discarded by the outer rollback.
  EXPECT_TRUE(txn.RollbackToSavepoint("inner").IsNotFound());
}

TEST(TransactionTest, UnknownSavepointIsNotFound) {
  Transaction txn(1, "u");
  EXPECT_TRUE(txn.RollbackToSavepoint("nope").IsNotFound());
}

TEST(TransactionTest, TableRootsSortedByTableId) {
  Transaction txn(1, "u");
  txn.MerkleForTable(300)->AddLeaf(Slice(std::string("c")));
  txn.MerkleForTable(100)->AddLeaf(Slice(std::string("a")));
  txn.MerkleForTable(200)->AddLeaf(Slice(std::string("b")));
  auto roots = txn.TableRoots();
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_EQ(roots[0].first, 100u);
  EXPECT_EQ(roots[1].first, 200u);
  EXPECT_EQ(roots[2].first, 300u);
}

KeyTuple RowKey(int64_t v) { return {Value::BigInt(v)}; }

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager locks(std::chrono::milliseconds(50));
  EXPECT_TRUE(locks.AcquireTable(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(locks.AcquireTable(2, 10, LockMode::kShared).ok());
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
}

TEST(LockManagerTest, ExclusiveBlocksOthers) {
  LockManager locks(std::chrono::milliseconds(50));
  EXPECT_TRUE(locks.AcquireTable(1, 10, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.AcquireTable(2, 10, LockMode::kShared).IsAborted());
  EXPECT_TRUE(locks.AcquireTable(2, 10, LockMode::kExclusive).IsAborted());
  EXPECT_TRUE(
      locks.AcquireTable(2, 10, LockMode::kIntentionShared).IsAborted());
  locks.ReleaseAll(1);
  EXPECT_TRUE(locks.AcquireTable(2, 10, LockMode::kExclusive).ok());
  locks.ReleaseAll(2);
}

TEST(LockManagerTest, ReentrantAndUpgrade) {
  LockManager locks(std::chrono::milliseconds(50));
  EXPECT_TRUE(locks.AcquireTable(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(locks.AcquireTable(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(locks.AcquireTable(1, 10, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.AcquireTable(1, 10, LockMode::kShared).ok());  // subsumed
  EXPECT_TRUE(locks.AcquireTable(2, 10, LockMode::kShared).IsAborted());
  locks.ReleaseAll(1);
}

TEST(LockManagerTest, UpgradeBlockedByOtherReader) {
  LockManager locks(std::chrono::milliseconds(50));
  EXPECT_TRUE(locks.AcquireTable(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(locks.AcquireTable(2, 10, LockMode::kShared).ok());
  EXPECT_TRUE(locks.AcquireTable(1, 10, LockMode::kExclusive).IsAborted());
  locks.ReleaseAll(2);
  EXPECT_TRUE(locks.AcquireTable(1, 10, LockMode::kExclusive).ok());
  locks.ReleaseAll(1);
}

TEST(LockManagerTest, WaiterWakesOnRelease) {
  LockManager locks(std::chrono::milliseconds(2000));
  ASSERT_TRUE(locks.AcquireTable(1, 10, LockMode::kExclusive).ok());
  std::thread waiter([&] {
    EXPECT_TRUE(locks.AcquireTable(2, 10, LockMode::kExclusive).ok());
    locks.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  locks.ReleaseAll(1);
  waiter.join();
}

TEST(LockManagerTest, IndependentTablesDoNotConflict) {
  LockManager locks(std::chrono::milliseconds(50));
  EXPECT_TRUE(locks.AcquireTable(1, 10, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.AcquireTable(2, 11, LockMode::kExclusive).ok());
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
}

TEST(LockManagerTest, IntentionModesCoexist) {
  LockManager locks(std::chrono::milliseconds(50));
  EXPECT_TRUE(locks.AcquireTable(1, 10, LockMode::kIntentionExclusive).ok());
  EXPECT_TRUE(locks.AcquireTable(2, 10, LockMode::kIntentionExclusive).ok());
  EXPECT_TRUE(locks.AcquireTable(3, 10, LockMode::kIntentionShared).ok());
  // S conflicts with IX holders; X conflicts with everyone.
  EXPECT_TRUE(locks.AcquireTable(4, 10, LockMode::kShared).IsAborted());
  EXPECT_TRUE(locks.AcquireTable(4, 10, LockMode::kExclusive).IsAborted());
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
  // IS holders permit S.
  EXPECT_TRUE(locks.AcquireTable(4, 10, LockMode::kShared).ok());
  locks.ReleaseAll(3);
  locks.ReleaseAll(4);
}

TEST(LockManagerTest, RowLocksIndependentUnderIntention) {
  LockManager locks(std::chrono::milliseconds(50));
  ASSERT_TRUE(locks.AcquireTable(1, 10, LockMode::kIntentionExclusive).ok());
  ASSERT_TRUE(locks.AcquireTable(2, 10, LockMode::kIntentionExclusive).ok());
  EXPECT_TRUE(locks.AcquireRow(1, 10, RowKey(1), LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.AcquireRow(2, 10, RowKey(2), LockMode::kExclusive).ok());
  // Same row conflicts.
  EXPECT_TRUE(
      locks.AcquireRow(2, 10, RowKey(1), LockMode::kExclusive).IsAborted());
  EXPECT_TRUE(
      locks.AcquireRow(2, 10, RowKey(1), LockMode::kShared).IsAborted());
  locks.ReleaseAll(1);
  EXPECT_TRUE(locks.AcquireRow(2, 10, RowKey(1), LockMode::kExclusive).ok());
  locks.ReleaseAll(2);
}

TEST(LockManagerTest, RowSharedReadersCoexist) {
  LockManager locks(std::chrono::milliseconds(50));
  ASSERT_TRUE(locks.AcquireTable(1, 10, LockMode::kIntentionShared).ok());
  ASSERT_TRUE(locks.AcquireTable(2, 10, LockMode::kIntentionShared).ok());
  EXPECT_TRUE(locks.AcquireRow(1, 10, RowKey(7), LockMode::kShared).ok());
  EXPECT_TRUE(locks.AcquireRow(2, 10, RowKey(7), LockMode::kShared).ok());
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
}

TEST(LockManagerTest, CompatibilityMatrix) {
  using M = LockMode;
  EXPECT_TRUE(LockModesCompatible(M::kIntentionShared, M::kIntentionShared));
  EXPECT_TRUE(LockModesCompatible(M::kIntentionShared, M::kIntentionExclusive));
  EXPECT_TRUE(LockModesCompatible(M::kIntentionShared, M::kShared));
  EXPECT_FALSE(LockModesCompatible(M::kIntentionShared, M::kExclusive));
  EXPECT_TRUE(LockModesCompatible(M::kIntentionExclusive, M::kIntentionExclusive));
  EXPECT_FALSE(LockModesCompatible(M::kIntentionExclusive, M::kShared));
  EXPECT_TRUE(LockModesCompatible(M::kShared, M::kShared));
  EXPECT_FALSE(LockModesCompatible(M::kShared, M::kIntentionExclusive));
  EXPECT_FALSE(LockModesCompatible(M::kExclusive, M::kIntentionShared));
}

}  // namespace
}  // namespace sqlledger
