// Digest-store outage recovery benchmark (DESIGN.md §9): how far behind
// does digest protection fall during a scripted store outage, and how fast
// does the pipeline catch back up once the store returns?
//
//   phase 1  healthy cadence — inserts + digests, store reachable;
//   phase 2  scripted outage (default 10 s, --outage-ms=N) — the workload
//            keeps committing and submitting digests, every upload fails,
//            the durable outbox absorbs the backlog and the breaker opens;
//   phase 3  recovery — the store returns; measure wall time until the
//            backlog drains and staleness returns to zero.
//
// Writes machine-readable BENCH_digest_outage.json (peak staleness, catch-up
// time, retry/breaker counters) so CI can compare runs without scraping
// stdout. Self-contained main(), no google-benchmark: the interesting
// number is one wall-clock measurement, not a steady-state throughput.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "ledger/digest_pipeline.h"
#include "ledger/digest_store.h"
#include "ledger/faulty_digest_store.h"
#include "ledger/ledger_database.h"
#include "util/json.h"

using namespace sqlledger;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Schema BenchSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 64);
  s.SetPrimaryKey({0});
  return s;
}

struct Workload {
  LedgerDatabase* db;
  int64_t next_id = 1;

  void Commit(int rows) {
    const std::string payload(64, 'x');
    auto txn = db->Begin("bench");
    if (!txn.ok()) std::exit(1);
    for (int r = 0; r < rows; r++) {
      if (!db->Insert(*txn, "t",
                      {Value::BigInt(next_id++), Value::Varchar(payload)})
               .ok())
        std::exit(1);
    }
    if (!db->Commit(*txn).ok()) std::exit(1);
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_digest_outage.json";
  int outage_ms = 10000;
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--outage-ms=", 12) == 0)
      outage_ms = std::atoi(argv[i] + 12);
  }

  std::filesystem::path work =
      std::filesystem::temp_directory_path() /
      ("sqlledger_outage_bench_" + std::to_string(::getpid()));
  std::filesystem::remove_all(work);
  std::filesystem::create_directories(work);

  LedgerDatabaseOptions options;
  options.block_size = 64;
  options.database_id = "bench-outage";
  auto opened = LedgerDatabase::Open(std::move(options));
  if (!opened.ok()) std::exit(1);
  auto db = std::move(*opened);
  if (!db->CreateTable("t", BenchSchema(), TableKind::kUpdateable).ok())
    std::exit(1);

  auto blob_store =
      ImmutableBlobDigestStore::Open((work / "digests").string());
  if (!blob_store.ok()) std::exit(1);
  FaultyDigestStore store(blob_store->get());

  DigestPipelineOptions popts;
  popts.outbox_dir = (work / "outbox").string();
  popts.outbox_capacity = 256;
  popts.initial_backoff_micros = 50 * 1000;  // 50 ms
  popts.max_backoff_micros = 500 * 1000;     // cap retries at 2/s
  popts.probe_interval_micros = 250 * 1000;  // open-breaker probe cadence
  Status started = db->StartDigestProtection(&store, popts);
  if (!started.ok()) {
    std::fprintf(stderr, "StartDigestProtection: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }
  DigestUploadPipeline* p = db->digest_pipeline();

  Workload load{db.get()};
  const int kDigestEveryMs = 100;  // the paper's "every few seconds", scaled

  std::printf("=== Digest outage recovery benchmark ===\n");
  std::printf("  outage length          : %d ms\n", outage_ms);

  // ---- Phase 1: healthy warm-up ----
  for (int i = 0; i < 10; i++) {
    load.Commit(8);
    if (!p->GenerateAndSubmit().ok()) std::exit(1);
    if (p->DrainFully().ok() == false) std::exit(1);
  }
  DigestProtectionStatus healthy = p->status();
  if (!healthy.fully_protected()) std::exit(1);
  uint64_t healthy_uploads = healthy.uploads_ok;
  std::printf("  healthy warm-up        : %llu digests uploaded\n",
              static_cast<unsigned long long>(healthy_uploads));

  // ---- Phase 2: scripted outage ----
  store.SetOutage(true);
  uint64_t peak_blocks_behind = 0;
  uint64_t peak_pending = 0;
  uint64_t submitted_during_outage = 0;
  uint64_t rejected_during_outage = 0;
  bool breaker_opened = false;
  double outage_start = NowSeconds();
  while ((NowSeconds() - outage_start) * 1000.0 < outage_ms) {
    load.Commit(8);
    Status st = p->GenerateAndSubmit();
    if (st.ok())
      submitted_during_outage++;
    else if (st.code() == StatusCode::kBusy)
      rejected_during_outage++;
    else
      std::exit(1);
    (void)p->Pump();  // fails against the dead store; drives the breaker
    DigestProtectionStatus s = p->status();
    peak_blocks_behind = std::max(peak_blocks_behind, s.blocks_behind);
    peak_pending = std::max(peak_pending, s.outbox_pending);
    if (s.breaker == DigestBreakerState::kOpen) breaker_opened = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(kDigestEveryMs));
  }
  DigestProtectionStatus during = p->status();
  std::printf("  during outage          : %llu digests queued, peak %llu "
              "blocks behind, breaker=%s\n",
              static_cast<unsigned long long>(submitted_during_outage),
              static_cast<unsigned long long>(peak_blocks_behind),
              DigestBreakerStateName(during.breaker));

  // ---- Phase 3: recovery ----
  store.SetOutage(false);
  double recover_start = NowSeconds();
  double catchup_seconds = -1;
  for (int spin = 0; spin < 60000; spin++) {
    (void)p->Pump();
    DigestProtectionStatus s = p->status();
    if (!s.fatal.ok()) std::exit(1);
    if (s.outbox_pending == 0 && s.fully_protected()) {
      catchup_seconds = NowSeconds() - recover_start;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (catchup_seconds < 0) {
    std::fprintf(stderr, "pipeline never caught up: %s\n",
                 p->status().ToString().c_str());
    std::exit(1);
  }
  DigestProtectionStatus final_status = p->status();
  std::printf("  catch-up               : %.3f s  (%llu uploads, %llu "
              "retries, %llu transient errors)\n",
              catchup_seconds,
              static_cast<unsigned long long>(final_status.uploads_ok),
              static_cast<unsigned long long>(final_status.retries),
              static_cast<unsigned long long>(final_status.transient_errors));

  // End-to-end cross-check: the blob store's digests verify the ledger.
  auto report = VerifyLedgerAgainstStore(db.get(), **blob_store);
  if (!report.ok() || !report->ok()) {
    std::fprintf(stderr, "post-recovery verification failed\n");
    std::exit(1);
  }
  std::printf("  post-recovery verify   : OK (%llu blocks)\n",
              static_cast<unsigned long long>(report->blocks_checked));

  JsonValue doc = JsonValue::Object();
  doc.Set("outage_ms", JsonValue::Int(outage_ms));
  doc.Set("digest_interval_ms", JsonValue::Int(kDigestEveryMs));
  doc.Set("healthy_uploads", JsonValue::Int(static_cast<int64_t>(
                                 healthy_uploads)));
  doc.Set("submitted_during_outage",
          JsonValue::Int(static_cast<int64_t>(submitted_during_outage)));
  doc.Set("rejected_during_outage",
          JsonValue::Int(static_cast<int64_t>(rejected_during_outage)));
  doc.Set("peak_blocks_behind",
          JsonValue::Int(static_cast<int64_t>(peak_blocks_behind)));
  doc.Set("peak_outbox_pending",
          JsonValue::Int(static_cast<int64_t>(peak_pending)));
  doc.Set("breaker_opened", JsonValue::Bool(breaker_opened));
  doc.Set("catchup_seconds", JsonValue::Double(catchup_seconds));
  doc.Set("uploads_ok",
          JsonValue::Int(static_cast<int64_t>(final_status.uploads_ok)));
  doc.Set("retries", JsonValue::Int(static_cast<int64_t>(
                         final_status.retries)));
  doc.Set("transient_errors",
          JsonValue::Int(static_cast<int64_t>(final_status.transient_errors)));
  doc.Set("blocks_verified",
          JsonValue::Int(static_cast<int64_t>(report->blocks_checked)));
  // Registry-sourced extras (DESIGN.md §13): status() above reads the same
  // digest.* registry storage, so these agree with the counters by
  // construction.
  MetricsSnapshot snap = db->MetricsSnapshot();
  doc.Set("breaker_transitions",
          JsonValue::Int(static_cast<int64_t>(
              snap.counters["digest.breaker_transitions_total"])));
  const HistogramSnapshot& upload = snap.histograms["digest.upload_micros"];
  doc.Set("upload_p50_micros", JsonValue::Double(upload.Percentile(50)));
  doc.Set("upload_p99_micros", JsonValue::Double(upload.Percentile(99)));
  doc.Set("final_outbox_depth",
          JsonValue::Int(snap.gauges["digest.outbox_depth"]));

  std::ofstream out(out_path);
  out << doc.DumpPretty() << "\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  db->StopDigestProtection();
  db.reset();
  // Blob files are write-once read-only; restore permissions to clean up.
  std::error_code ec;
  for (auto it = std::filesystem::recursive_directory_iterator(
           work, std::filesystem::directory_options::skip_permission_denied,
           ec);
       it != std::filesystem::recursive_directory_iterator(); ++it) {
    std::filesystem::permissions(it->path(), std::filesystem::perms::owner_all,
                                 std::filesystem::perm_options::add, ec);
  }
  std::filesystem::remove_all(work, ec);
  return 0;
}
