// Figure 7 reproduction: throughput of SQL Ledger compared to the
// traditional engine (no ledger), for a TPC-C-like (update-intensive) and a
// TPC-E-like (read-heavy) workload.
//
// Paper result (72-core Xeon): TPC-C -30.6%, TPC-E -6.9%. We reproduce the
// *shape*: the ledger overhead is several times larger for TPC-C than for
// TPC-E, because the overhead is tied to row modifications (history insert
// + SHA-256 per version).

// A second mode, --commit-bench, measures the group-commit pipeline
// (DESIGN.md §10): multi-session committed-txns/sec and fsyncs/txn for the
// serial pre-group-commit path (max_group_size=1, one fsync per commit)
// vs. the batched pipeline, across a sessions sweep. Writes BENCH_commit.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "ledger/ledger_database.h"
#include "util/json.h"
#include "util/random.h"
#include "workload/tpcc.h"
#include "workload/tpce.h"

using namespace sqlledger;

namespace {

std::unique_ptr<LedgerDatabase> OpenDb(bool enable_ledger) {
  LedgerDatabaseOptions options;
  options.enable_ledger = enable_ledger;
  options.block_size = 100000;  // the paper's block size
  options.database_id = "fig7";
  // Durable configuration: commits append to the WAL, as in the paper's
  // system (group fsync disabled, like an OS-cached log device).
  std::string dir = (std::filesystem::temp_directory_path() /
                     (enable_ledger ? "sl_fig7_ledger" : "sl_fig7_plain"))
                        .string();
  std::filesystem::remove_all(dir);
  options.data_dir = dir;
  auto db = LedgerDatabase::Open(std::move(options));
  if (!db.ok()) std::exit(1);
  return std::move(*db);
}

template <typename Workload, typename Config, typename Stats>
double RunTps(bool ledger, Config config, int txns) {
  auto db = OpenDb(ledger);
  config.ledger_tables = ledger;
  Workload workload(db.get(), config);
  Status st = workload.Setup();
  if (!st.ok()) {
    std::printf("setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  Random rng(42);
  Stats stats;
  // Warm-up.
  for (int i = 0; i < txns / 10; i++) (void)workload.RunTransaction(&rng, &stats);

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < txns; i++) {
    st = workload.RunTransaction(&rng, &stats);
    if (!st.ok()) {
      std::printf("txn failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  return static_cast<double>(txns) / elapsed;
}

// ---- Group-commit bench (--commit-bench) ----

struct CommitBenchResult {
  double tps = 0;
  double fsyncs_per_txn = 0;
  uint64_t commit_groups = 0;
  uint64_t largest_group = 0;
  double sync_p50_micros = 0;
  double sync_p99_micros = 0;
};

Schema CommitBenchSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 64);
  s.SetPrimaryKey({0});
  return s;
}

CommitBenchResult RunCommitConfig(int sessions, int txns_per_session,
                                  CommitOptions commit) {
  LedgerDatabaseOptions options;
  options.enable_ledger = true;
  options.block_size = 100000;
  options.database_id = "commit-bench";
  options.sync_wal = true;  // durability on: the fsync is what we batch
  options.commit = commit;
  std::string dir =
      (std::filesystem::temp_directory_path() / "sl_commit_bench").string();
  std::filesystem::remove_all(dir);
  options.data_dir = dir;
  auto opened = LedgerDatabase::Open(std::move(options));
  if (!opened.ok()) std::exit(1);
  auto db = std::move(*opened);
  if (!db->CreateTable("t", CommitBenchSchema(), TableKind::kAppendOnly).ok())
    std::exit(1);

  // The numbers come from the metrics registry (DESIGN.md §13) — the same
  // accounting the stats surface reports, so the bench can't drift from it.
  MetricsSnapshot before = db->MetricsSnapshot();
  const std::string payload(64, 'x');
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; s++) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < txns_per_session; i++) {
        int64_t id = static_cast<int64_t>(s) * txns_per_session + i;
        auto txn = db->Begin("bench");
        if (!txn.ok()) std::exit(1);
        Status st = db->Insert(*txn, "t",
                               {Value::BigInt(id), Value::Varchar(payload)});
        if (st.ok()) st = db->Commit(*txn);
        if (!st.ok()) {
          std::printf("bench commit failed: %s\n", st.ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  MetricsSnapshot after = db->MetricsSnapshot();

  uint64_t txns = static_cast<uint64_t>(sessions) * txns_per_session;
  CommitBenchResult result;
  result.tps = txns / elapsed;
  result.fsyncs_per_txn =
      static_cast<double>(after.counters["wal.syncs_total"] -
                          before.counters["wal.syncs_total"]) /
      txns;
  result.commit_groups = after.counters["commit.groups_total"] -
                         before.counters["commit.groups_total"];
  const HistogramSnapshot& group_size = after.histograms["commit.group_size"];
  result.largest_group = group_size.max;
  const HistogramSnapshot& sync = after.histograms["wal.sync_micros"];
  result.sync_p50_micros = sync.Percentile(50);
  result.sync_p99_micros = sync.Percentile(99);
  db.reset();
  std::filesystem::remove_all(dir);
  return result;
}

int RunCommitBench(int txns_per_session, const std::string& out_path) {
  std::printf("=== Group-commit bench: sessions sweep, seed (serial, one "
              "fsync/txn) vs after (batched) ===\n\n");
  std::printf("%9s %14s %14s %9s %11s %11s %8s\n", "sessions", "seed (tps)",
              "after (tps)", "speedup", "seed fs/txn", "after fs/txn",
              "largest");

  // "Seed" reproduces the pre-group-commit serial path: every commit is
  // its own group, so it pays slot assignment + WAL append + fsync alone.
  CommitOptions seed_opts;
  seed_opts.max_group_size = 1;
  seed_opts.max_group_wait_micros = 0;
  CommitOptions after_opts;  // the defaults are the shipped configuration

  JsonValue sweep = JsonValue::Array();
  double best_speedup = 0;
  double fsyncs_at_8 = 1.0;
  double speedup_at_8 = 0;
  for (int sessions : {1, 2, 4, 8}) {
    CommitBenchResult seed =
        RunCommitConfig(sessions, txns_per_session, seed_opts);
    CommitBenchResult after =
        RunCommitConfig(sessions, txns_per_session, after_opts);
    double speedup = after.tps / seed.tps;
    std::printf("%9d %14.0f %14.0f %8.2fx %11.3f %11.3f %8llu\n", sessions,
                seed.tps, after.tps, speedup, seed.fsyncs_per_txn,
                after.fsyncs_per_txn,
                static_cast<unsigned long long>(after.largest_group));
    JsonValue row = JsonValue::Object();
    row.Set("sessions", JsonValue::Int(sessions));
    row.Set("seed_tps", JsonValue::Double(seed.tps));
    row.Set("after_tps", JsonValue::Double(after.tps));
    row.Set("speedup", JsonValue::Double(speedup));
    row.Set("seed_fsyncs_per_txn", JsonValue::Double(seed.fsyncs_per_txn));
    row.Set("after_fsyncs_per_txn", JsonValue::Double(after.fsyncs_per_txn));
    row.Set("after_commit_groups",
            JsonValue::Int(static_cast<int64_t>(after.commit_groups)));
    row.Set("after_largest_group",
            JsonValue::Int(static_cast<int64_t>(after.largest_group)));
    row.Set("after_sync_p50_micros", JsonValue::Double(after.sync_p50_micros));
    row.Set("after_sync_p99_micros", JsonValue::Double(after.sync_p99_micros));
    sweep.Append(std::move(row));
    if (speedup > best_speedup) best_speedup = speedup;
    if (sessions == 8) {
      fsyncs_at_8 = after.fsyncs_per_txn;
      speedup_at_8 = speedup;
    }
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", JsonValue::Str("group_commit"));
  doc.Set("txns_per_session", JsonValue::Int(txns_per_session));
  doc.Set("sweep", std::move(sweep));
  doc.Set("speedup_at_8_sessions", JsonValue::Double(speedup_at_8));
  doc.Set("fsyncs_per_txn_at_8_sessions", JsonValue::Double(fsyncs_at_8));
  std::ofstream out(out_path);
  out << doc.DumpPretty() << "\n";
  std::printf("\nwrote %s (speedup at 8 sessions: %.2fx, fsyncs/txn %.3f)\n",
              out_path.c_str(), speedup_at_8, fsyncs_at_8);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool commit_bench = false;
  int commit_txns = 400;
  std::string out_path = "BENCH_commit.json";
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--commit-bench") == 0) commit_bench = true;
    if (std::strncmp(argv[i], "--txns=", 7) == 0)
      commit_txns = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  if (commit_bench) return RunCommitBench(commit_txns, out_path);

  const int kTxns = 4000;

  std::printf("=== Figure 7: throughput of SQL Ledger vs traditional engine "
              "===\n\n");

  double tpcc_ledger =
      RunTps<TpccWorkload, TpccConfig, TpccStats>(true, TpccConfig{}, kTxns);
  double tpcc_plain =
      RunTps<TpccWorkload, TpccConfig, TpccStats>(false, TpccConfig{}, kTxns);

  TpceConfig tpce_config;
  double tpce_ledger = RunTps<TpceWorkload, TpceConfig, TpceStats>(
      true, tpce_config, kTxns);
  double tpce_plain = RunTps<TpceWorkload, TpceConfig, TpceStats>(
      false, tpce_config, kTxns);

  double tpcc_diff = (tpcc_ledger - tpcc_plain) / tpcc_plain * 100.0;
  double tpce_diff = (tpce_ledger - tpce_plain) / tpce_plain * 100.0;

  std::printf("%-10s %14s %14s %22s\n", "Workload", "Ledger (tps)",
              "Regular (tps)", "Performance difference");
  std::printf("%-10s %14.0f %14.0f %21.1f%%\n", "TPC-C", tpcc_ledger,
              tpcc_plain, tpcc_diff);
  std::printf("%-10s %14.0f %14.0f %21.1f%%\n", "TPC-E", tpce_ledger,
              tpce_plain, tpce_diff);
  std::printf("\npaper (72-core testbed): TPC-C -30.6%%, TPC-E -6.9%%\n");
  std::printf("expected shape: both negative; TPC-C overhead several times "
              "TPC-E overhead\n");
  return 0;
}
