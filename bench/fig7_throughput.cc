// Figure 7 reproduction: throughput of SQL Ledger compared to the
// traditional engine (no ledger), for a TPC-C-like (update-intensive) and a
// TPC-E-like (read-heavy) workload.
//
// Paper result (72-core Xeon): TPC-C -30.6%, TPC-E -6.9%. We reproduce the
// *shape*: the ledger overhead is several times larger for TPC-C than for
// TPC-E, because the overhead is tied to row modifications (history insert
// + SHA-256 per version).

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "ledger/ledger_database.h"
#include "util/random.h"
#include "workload/tpcc.h"
#include "workload/tpce.h"

using namespace sqlledger;

namespace {

std::unique_ptr<LedgerDatabase> OpenDb(bool enable_ledger) {
  LedgerDatabaseOptions options;
  options.enable_ledger = enable_ledger;
  options.block_size = 100000;  // the paper's block size
  options.database_id = "fig7";
  // Durable configuration: commits append to the WAL, as in the paper's
  // system (group fsync disabled, like an OS-cached log device).
  std::string dir = (std::filesystem::temp_directory_path() /
                     (enable_ledger ? "sl_fig7_ledger" : "sl_fig7_plain"))
                        .string();
  std::filesystem::remove_all(dir);
  options.data_dir = dir;
  auto db = LedgerDatabase::Open(std::move(options));
  if (!db.ok()) std::exit(1);
  return std::move(*db);
}

template <typename Workload, typename Config, typename Stats>
double RunTps(bool ledger, Config config, int txns) {
  auto db = OpenDb(ledger);
  config.ledger_tables = ledger;
  Workload workload(db.get(), config);
  Status st = workload.Setup();
  if (!st.ok()) {
    std::printf("setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  Random rng(42);
  Stats stats;
  // Warm-up.
  for (int i = 0; i < txns / 10; i++) (void)workload.RunTransaction(&rng, &stats);

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < txns; i++) {
    st = workload.RunTransaction(&rng, &stats);
    if (!st.ok()) {
      std::printf("txn failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  return static_cast<double>(txns) / elapsed;
}

}  // namespace

int main() {
  const int kTxns = 4000;

  std::printf("=== Figure 7: throughput of SQL Ledger vs traditional engine "
              "===\n\n");

  double tpcc_ledger =
      RunTps<TpccWorkload, TpccConfig, TpccStats>(true, TpccConfig{}, kTxns);
  double tpcc_plain =
      RunTps<TpccWorkload, TpccConfig, TpccStats>(false, TpccConfig{}, kTxns);

  TpceConfig tpce_config;
  double tpce_ledger = RunTps<TpceWorkload, TpceConfig, TpceStats>(
      true, tpce_config, kTxns);
  double tpce_plain = RunTps<TpceWorkload, TpceConfig, TpceStats>(
      false, tpce_config, kTxns);

  double tpcc_diff = (tpcc_ledger - tpcc_plain) / tpcc_plain * 100.0;
  double tpce_diff = (tpce_ledger - tpce_plain) / tpce_plain * 100.0;

  std::printf("%-10s %14s %14s %22s\n", "Workload", "Ledger (tps)",
              "Regular (tps)", "Performance difference");
  std::printf("%-10s %14.0f %14.0f %21.1f%%\n", "TPC-C", tpcc_ledger,
              tpcc_plain, tpcc_diff);
  std::printf("%-10s %14.0f %14.0f %21.1f%%\n", "TPC-E", tpce_ledger,
              tpce_plain, tpce_diff);
  std::printf("\npaper (72-core testbed): TPC-C -30.6%%, TPC-E -6.9%%\n");
  std::printf("expected shape: both negative; TPC-C overhead several times "
              "TPC-E overhead\n");
  return 0;
}
