// §4.1.1 profile reproduction: the paper reports that of SQL Ledger's DML
// overhead, "inserting the historical data into the History table accounts
// for approximately half of the overhead while the hash generation is
// responsible for the remainder". This bench separates the two components
// on 260-byte rows and compares their shares against the measured
// end-to-end overhead of a ledger UPDATE vs a regular UPDATE.

#include <chrono>
#include <cstdio>

#include "ledger/ledger_database.h"
#include "ledger/row_serializer.h"

using namespace sqlledger;

namespace {

Schema WideSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("a", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 244);
  s.SetPrimaryKey({0});
  return s;
}

Row WideRow(int64_t id) {
  return {Value::BigInt(id), Value::BigInt(id * 3),
          Value::Varchar(std::string(244, 'x'))};
}

double SecondsPer(int iters, const std::function<void(int64_t)>& fn) {
  auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < iters; i++) fn(i);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() /
         iters;
}

double MeasureUpdate(bool ledger, int iters) {
  LedgerDatabaseOptions options;
  options.enable_ledger = ledger;
  options.block_size = 100000;
  auto opened = LedgerDatabase::Open(std::move(options));
  if (!opened.ok()) std::exit(1);
  auto db = std::move(*opened);
  TableKind kind = ledger ? TableKind::kUpdateable : TableKind::kRegular;
  if (!db->CreateTable("t", WideSchema(), kind).ok()) std::exit(1);
  {
    auto txn = db->Begin("load");
    for (int64_t i = 0; i < 1024; i++) (void)db->Insert(*txn, "t", WideRow(i));
    (void)db->Commit(*txn);
  }
  return SecondsPer(iters, [&](int64_t i) {
    auto txn = db->Begin("bench");
    Row row = WideRow(i % 1024);
    row[1] = Value::BigInt(i);
    (void)db->Update(*txn, "t", row);
    (void)db->Commit(*txn);
  });
}

}  // namespace

int main() {
  const int kIters = 20000;
  std::printf("=== ledger DML overhead breakdown (260-byte rows) ===\n\n");

  // Component 1: serialization + SHA-256 leaf hashing. An UPDATE hashes the
  // row twice (before and after images, paper §4.1.2).
  Schema schema = MakeLedgerSchema(WideSchema(), TableKind::kUpdateable);
  Row row = *schema.PadRow(WideRow(42));
  double hash_per_version = SecondsPer(kIters, [&](int64_t i) {
    Hash256 h = RowVersionLeafHash(schema, row, RowOp::kInsert, 100,
                                   static_cast<uint64_t>(i), 0);
    asm volatile("" : : "r"(h.bytes[0]));
  });

  // Component 2: the history-table insert (a B+-tree insert of the retired
  // version keyed by (end txn, end seq)).
  TableStore history(200, "history", MakeHistorySchema(schema));
  Schema history_schema = history.schema();
  int end_txn = history_schema.FindColumn(kColEndTxn);
  int end_seq = history_schema.FindColumn(kColEndSeq);
  double history_insert = SecondsPer(kIters, [&](int64_t i) {
    Row retired = row;
    retired[end_txn] = Value::BigInt(i);
    retired[end_seq] = Value::BigInt(0);
    (void)history.Insert(retired);
  });

  // End-to-end: ledger UPDATE vs regular UPDATE through the full stack.
  double regular_update = MeasureUpdate(false, kIters);
  double ledger_update = MeasureUpdate(true, kIters);
  double total_overhead = ledger_update - regular_update;
  double hash_component = 2 * hash_per_version;  // before + after images
  double history_component = history_insert;

  auto us = [](double s) { return s * 1e6; };
  std::printf("hash one row version:          %7.2f us\n",
              us(hash_per_version));
  std::printf("history-table insert:          %7.2f us\n",
              us(history_insert));
  std::printf("regular UPDATE (end to end):   %7.2f us\n", us(regular_update));
  std::printf("ledger UPDATE (end to end):    %7.2f us\n", us(ledger_update));
  std::printf("measured UPDATE overhead:      %7.2f us\n", us(total_overhead));
  std::printf("\ncomponent shares of the overhead:\n");
  std::printf("  hashing (2 versions):  %5.1f%%\n",
              hash_component / total_overhead * 100.0);
  std::printf("  history insert:        %5.1f%%\n",
              history_component / total_overhead * 100.0);
  std::printf("\npaper profile: history insertion ~half of the overhead, "
              "hash generation the remainder\n");
  return 0;
}
