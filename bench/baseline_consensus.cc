// §4.1.1 comparison point: SQL Ledger vs a decentralized-consensus ledger
// (Hyperledger-Fabric-like, simulated — see DESIGN.md §1.3).
//
// Paper claims: SQL Ledger achieves >20x the throughput of state-of-the-art
// blockchain systems, whose end-to-end latency sits in the 100s of
// milliseconds due to consensus. We reproduce both claims: the centralized
// ledger's measured tps vs the consensus ledger's throughput ceiling, and
// commit latency in microseconds vs simulated consensus latency in 100s of
// milliseconds.

#include <chrono>
#include <cstdio>

#include "ledger/ledger_database.h"
#include "workload/consensus_baseline.h"

using namespace sqlledger;

int main() {
  std::printf("=== SQL Ledger vs simulated consensus ledger (Fabric-like) "
              "===\n\n");

  // --- SQL Ledger: simple single-row ledger transactions. ---
  LedgerDatabaseOptions options;
  options.block_size = 100000;
  auto opened = LedgerDatabase::Open(std::move(options));
  if (!opened.ok()) return 1;
  auto db = std::move(*opened);
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 64);
  s.SetPrimaryKey({0});
  if (!db->CreateTable("t", s, TableKind::kUpdateable).ok()) return 1;

  const int kTxns = 20000;
  const std::string payload(64, 'p');
  auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < kTxns; i++) {
    auto txn = db->Begin("bench");
    if (!db->Insert(*txn, "t", {Value::BigInt(i), Value::Varchar(payload)})
             .ok())
      return 1;
    if (!db->Commit(*txn).ok()) return 1;
  }
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  double ledger_tps = kTxns / elapsed;
  double ledger_latency_us = elapsed / kTxns * 1e6;

  // --- Consensus baseline: published-Fabric-like parameters, simulated at
  // 100x time compression; reported numbers are unscaled. ---
  ConsensusConfig config;
  config.time_scale = 100;
  SimulatedConsensusLedger consensus(config);
  const int kConsensusTxns = 40;
  uint64_t total_latency = 0;
  for (int i = 0; i < kConsensusTxns; i++) {
    total_latency += consensus.Submit(Slice(payload));
  }
  double consensus_latency_ms =
      static_cast<double>(total_latency) / kConsensusTxns / 1000.0;
  double consensus_tps = consensus.TheoreticalMaxThroughput();

  std::printf("%-28s %16s %18s\n", "System", "Throughput (tps)",
              "Commit latency");
  std::printf("%-28s %16.0f %15.0f us\n", "SQL Ledger (this repo)",
              ledger_tps, ledger_latency_us);
  std::printf("%-28s %16.0f %15.0f ms\n", "Consensus ledger (sim)",
              consensus_tps, consensus_latency_ms);
  std::printf("\nthroughput ratio: %.1fx (paper: >20x)\n",
              ledger_tps / consensus_tps);
  std::printf("latency ratio: %.0fx (paper: \"orders of magnitude\"; "
              "consensus latency in 100s of ms)\n",
              consensus_latency_ms * 1000.0 / ledger_latency_us);
  return 0;
}
