// Simulator throughput: ops/second the differential harness sustains, with
// and without the adversarial mix. This bounds how much coverage a nightly
// budget buys (ops_per_sec * wall_budget = explored ops) and flags
// regressions in the harness itself — a 2x slowdown halves nightly
// coverage just as surely as a generator bug would.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "sim/driver.h"

namespace {

double RunOnce(const std::string& dir, uint64_t seed, size_t ops,
               bool adversarial) {
  sqlledger::sim::SimConfig config;
  config.seed = seed;
  config.gen.ops = ops;
  config.data_dir = dir;
  config.gen.enable_crash = adversarial;
  config.gen.enable_tamper = adversarial;
  config.gen.enable_truncate = adversarial;

  auto start = std::chrono::steady_clock::now();
  sqlledger::sim::SimResult result = sqlledger::sim::RunSim(config);
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  if (!result.ok) {
    std::fprintf(stderr, "DIVERGED (seed %llu): %s\n",
                 static_cast<unsigned long long>(seed),
                 result.message.c_str());
    std::exit(1);
  }
  return static_cast<double>(ops) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  size_t ops = 2000;
  if (argc > 1) ops = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));
  std::string dir =
      (std::filesystem::temp_directory_path() / "sqlledger_sim_bench")
          .string();

  std::printf("%-28s %12s\n", "configuration", "ops/sec");
  for (bool adversarial : {false, true}) {
    double total = 0;
    const int kSeeds = 3;
    for (int s = 1; s <= kSeeds; s++)
      total += RunOnce(dir, static_cast<uint64_t>(s), ops, adversarial);
    std::printf("%-28s %12.0f\n",
                adversarial ? "adversarial (crash+tamper)" : "clean workload",
                total / kSeeds);
  }
  std::filesystem::remove_all(dir);
  return 0;
}
