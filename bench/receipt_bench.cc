// §5.1 microbenchmark: transaction receipts. Demonstrates the paper's
// amortization argument — one signature per block serves every transaction
// in it, so per-receipt cost is a Merkle proof (O(log B)) plus one cached
// signature, not one asymmetric signature per transaction.

#include <benchmark/benchmark.h>

#include "ledger/receipt.h"

using namespace sqlledger;

namespace {

Schema SmallSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 32);
  s.SetPrimaryKey({0});
  return s;
}

struct ReceiptBench {
  std::unique_ptr<LedgerDatabase> db;
  uint64_t target_txn = 0;

  explicit ReceiptBench(uint64_t block_size) {
    LedgerDatabaseOptions options;
    options.block_size = block_size;
    auto opened = LedgerDatabase::Open(std::move(options));
    if (!opened.ok()) std::exit(1);
    db = std::move(*opened);
    if (!db->CreateTable("t", SmallSchema(), TableKind::kUpdateable).ok())
      std::exit(1);
    for (uint64_t i = 0; i < block_size; i++) {
      auto txn = db->Begin("bench");
      if (i == block_size / 2) target_txn = (*txn)->id();
      (void)db->Insert(*txn, "t",
                       {Value::BigInt(static_cast<int64_t>(i)),
                        Value::Varchar("x")});
      (void)db->Commit(*txn);
    }
    (void)db->GenerateDigest();
  }
};

void BM_MakeReceipt(benchmark::State& state) {
  ReceiptBench bench(static_cast<uint64_t>(state.range(0)));
  size_t json_bytes = 0;
  for (auto _ : state) {
    auto receipt = MakeTransactionReceipt(bench.db.get(), bench.target_txn);
    if (!receipt.ok()) {
      state.SkipWithError(receipt.status().ToString().c_str());
      return;
    }
    json_bytes = receipt->ToJson().size();
    benchmark::DoNotOptimize(receipt);
  }
  state.counters["receipt_bytes"] = static_cast<double>(json_bytes);
}

void BM_VerifyReceipt(benchmark::State& state) {
  ReceiptBench bench(static_cast<uint64_t>(state.range(0)));
  auto receipt = MakeTransactionReceipt(bench.db.get(), bench.target_txn);
  if (!receipt.ok()) {
    state.SkipWithError(receipt.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    bool ok = VerifyTransactionReceipt(*receipt, bench.db->signer());
    if (!ok) state.SkipWithError("receipt failed verification");
    benchmark::DoNotOptimize(ok);
  }
}

void BM_SignaturesPerTransaction(benchmark::State& state) {
  // The amortization itself: issuing receipts for EVERY transaction in a
  // block needs exactly one signing operation (identical signed root).
  ReceiptBench bench(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto receipt = MakeTransactionReceipt(bench.db.get(), bench.target_txn);
    benchmark::DoNotOptimize(receipt);
  }
  state.counters["signatures_per_txn"] =
      1.0 / static_cast<double>(state.range(0));
}

BENCHMARK(BM_MakeReceipt)->Arg(64)->Arg(512)->Arg(4096)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VerifyReceipt)->Arg(64)->Arg(512)->Arg(4096)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SignaturesPerTransaction)->Arg(64)->Arg(4096)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
