// Hashing-pipeline smoke benchmark: a fast, machine-readable summary of the
// hardware-accelerated hashing layer. Runs in seconds (CI-friendly) and
// writes BENCH_hashing.json with:
//
//   - single-shot SHA-256 MB/s for every kernel available on this machine
//     (scalar always; sha-ni / armv8-ce when the hardware has them);
//   - batched leaf hashing (HashMany) leaves/s and MB/s;
//   - streaming Merkle root throughput;
//   - fig9-style ledger verification wall time at parallelism 1 and 4,
//     with row-versions/s.
//
// The JSON lets CI and before/after comparisons consume the numbers without
// scraping stdout.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/sha256_kernel.h"
#include "ledger/verifier.h"
#include "util/json.h"

using namespace sqlledger;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs fn repeatedly until ~min_seconds elapse; returns seconds per call.
template <typename Fn>
double TimeIt(Fn fn, double min_seconds = 0.2) {
  fn();  // warm-up
  int iters = 0;
  double start = NowSeconds();
  double elapsed = 0;
  do {
    fn();
    iters++;
    elapsed = NowSeconds() - start;
  } while (elapsed < min_seconds);
  return elapsed / iters;
}

JsonValue BenchKernels() {
  JsonValue out = JsonValue::Array();
  const size_t kBytes = 1 << 20;  // 1 MiB per digest call
  std::string data(kBytes, 'x');
  for (const Sha256Kernel& kernel : AvailableSha256Kernels()) {
    volatile uint8_t sink = 0;
    double secs = TimeIt([&] {
      Hash256 h = Sha256DigestWithKernel(kernel, Slice(), Slice(data));
      sink = static_cast<uint8_t>(sink ^ h.bytes[0]);
    });
    double mb_per_s = (kBytes / (1024.0 * 1024.0)) / secs;
    JsonValue entry = JsonValue::Object();
    entry.Set("kernel", JsonValue::Str(kernel.name));
    entry.Set("mb_per_s", JsonValue::Double(mb_per_s));
    out.Append(std::move(entry));
    std::printf("  sha256 kernel %-8s : %10.1f MB/s\n", kernel.name,
                mb_per_s);
  }
  return out;
}

JsonValue BenchHashMany() {
  // 64 KiB of 260-byte leaves, the fig9 row width.
  const size_t kLeafBytes = 260;
  const size_t kLeaves = 16384;
  std::vector<uint8_t> arena(kLeaves * kLeafBytes);
  for (size_t i = 0; i < arena.size(); i++)
    arena[i] = static_cast<uint8_t>(i * 1315423911u >> 3);
  std::vector<Slice> inputs(kLeaves);
  for (size_t i = 0; i < kLeaves; i++)
    inputs[i] = Slice(arena.data() + i * kLeafBytes, kLeafBytes);
  std::vector<Hash256> out_hashes(kLeaves);

  double secs = TimeIt([&] {
    MerkleLeafHashMany(inputs.data(), kLeaves, out_hashes.data());
  });
  double leaves_per_s = kLeaves / secs;
  double mb_per_s = (kLeaves * kLeafBytes) / (1024.0 * 1024.0) / secs;
  std::printf("  batched leaf hashing   : %10.0f leaves/s  (%.1f MB/s)\n",
              leaves_per_s, mb_per_s);

  JsonValue entry = JsonValue::Object();
  entry.Set("leaf_bytes", JsonValue::Int(kLeafBytes));
  entry.Set("leaves_per_s", JsonValue::Double(leaves_per_s));
  entry.Set("mb_per_s", JsonValue::Double(mb_per_s));
  return entry;
}

JsonValue BenchMerkleRoot() {
  const size_t kLeaves = 65536;
  std::vector<Hash256> leaves(kLeaves);
  for (size_t i = 0; i < kLeaves; i++) {
    std::string data = "leaf-" + std::to_string(i);
    leaves[i] = MerkleLeafHash(Slice(data));
  }
  double streaming_secs = TimeIt([&] {
    MerkleBuilder builder;
    for (const Hash256& leaf : leaves) builder.AddLeafHash(leaf);
    volatile uint8_t sink = builder.Root().bytes[0];
    (void)sink;
  });
  double materialized_secs = TimeIt([&] {
    MerkleTree tree(leaves);
    volatile uint8_t sink = tree.Root().bytes[0];
    (void)sink;
  });
  std::printf("  streaming Merkle root  : %10.0f leaves/s\n",
              kLeaves / streaming_secs);
  std::printf("  materialized tree      : %10.0f leaves/s\n",
              kLeaves / materialized_secs);

  JsonValue entry = JsonValue::Object();
  entry.Set("leaves", JsonValue::Int(static_cast<int64_t>(kLeaves)));
  entry.Set("streaming_leaves_per_s",
            JsonValue::Double(kLeaves / streaming_secs));
  entry.Set("materialized_leaves_per_s",
            JsonValue::Double(kLeaves / materialized_secs));
  return entry;
}

Schema WideSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("a", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 244);
  s.SetPrimaryKey({0});
  return s;
}

JsonValue BenchVerification(int txns) {
  LedgerDatabaseOptions options;
  options.block_size = 100000;
  options.database_id = "bench-hashing";
  auto opened = LedgerDatabase::Open(std::move(options));
  if (!opened.ok()) std::exit(1);
  auto db = std::move(*opened);
  if (!db->CreateTable("t", WideSchema(), TableKind::kUpdateable).ok())
    std::exit(1);

  const std::string payload(244, 'x');
  int64_t next_id = 1;
  for (int i = 0; i < txns; i++) {
    auto txn = db->Begin("load");
    for (int r = 0; r < 5; r++) {
      Status st = db->Insert(*txn, "t",
                             {Value::BigInt(next_id++), Value::BigInt(r),
                              Value::Varchar(payload)});
      if (!st.ok()) std::exit(1);
    }
    if (!db->Commit(*txn).ok()) std::exit(1);
  }
  auto digest = db->GenerateDigest();
  if (!digest.ok()) std::exit(1);

  JsonValue runs = JsonValue::Array();
  uint64_t row_versions = 0;
  for (unsigned parallelism : {1u, 4u}) {
    VerificationOptions vopts;
    vopts.parallelism = parallelism;
    double start = NowSeconds();
    auto report = VerifyLedger(db.get(), {*digest}, vopts);
    double secs = NowSeconds() - start;
    if (!report.ok() || !report->ok()) {
      std::printf("unexpected verification failure (parallelism=%u)\n",
                  parallelism);
      std::exit(1);
    }
    row_versions = report->row_versions_checked;
    std::printf(
        "  verify %6d txns  p=%u : %8.3f s  (%.0f row-versions/s)\n", txns,
        parallelism, secs, report->row_versions_checked / secs);
    JsonValue run = JsonValue::Object();
    run.Set("parallelism", JsonValue::Int(parallelism));
    run.Set("seconds", JsonValue::Double(secs));
    run.Set("row_versions_per_s",
            JsonValue::Double(report->row_versions_checked / secs));
    runs.Append(std::move(run));
  }

  JsonValue entry = JsonValue::Object();
  entry.Set("transactions", JsonValue::Int(txns));
  entry.Set("row_versions", JsonValue::Int(static_cast<int64_t>(row_versions)));
  entry.Set("runs", std::move(runs));
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_hashing.json";
  int verify_txns = 2000;
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--txns=", 7) == 0)
      verify_txns = std::atoi(argv[i] + 7);
  }

  std::printf("=== Hashing pipeline smoke benchmark ===\n");
  std::printf("  active kernel          : %s\n\n", Sha256::KernelName());

  JsonValue doc = JsonValue::Object();
  doc.Set("active_kernel", JsonValue::Str(Sha256::KernelName()));
  doc.Set("sha256_kernels", BenchKernels());
  doc.Set("batched_leaf_hashing", BenchHashMany());
  doc.Set("merkle_root", BenchMerkleRoot());
  std::printf("\n");
  doc.Set("verification", BenchVerification(verify_txns));

  std::ofstream out(out_path);
  out << doc.DumpPretty() << "\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
