// Figure 9 reproduction: ledger verification time for different numbers of
// transactions. Each transaction updates five rows of a ledger table;
// every row is 260 bytes wide (paper §4.2).
//
// Paper result: verification time grows linearly with the number of
// transactions (and row versions) processed. We reproduce the linear
// scaling; absolute times differ (testbed vs container).

#include <chrono>
#include <cstdio>

#include "ledger/verifier.h"

using namespace sqlledger;

namespace {

Schema WideSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("a", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 244);
  s.SetPrimaryKey({0});
  return s;
}

double VerificationSeconds(int txns) {
  LedgerDatabaseOptions options;
  options.block_size = 100000;
  options.database_id = "fig9";
  auto opened = LedgerDatabase::Open(std::move(options));
  if (!opened.ok()) std::exit(1);
  auto db = std::move(*opened);
  if (!db->CreateTable("t", WideSchema(), TableKind::kUpdateable).ok())
    std::exit(1);

  const std::string payload(244, 'x');
  int64_t next_id = 1;
  for (int i = 0; i < txns; i++) {
    auto txn = db->Begin("load");
    for (int r = 0; r < 5; r++) {  // five rows per transaction (paper)
      Status st = db->Insert(*txn, "t",
                             {Value::BigInt(next_id++), Value::BigInt(r),
                              Value::Varchar(payload)});
      if (!st.ok()) std::exit(1);
    }
    if (!db->Commit(*txn).ok()) std::exit(1);
  }
  auto digest = db->GenerateDigest();
  if (!digest.ok()) std::exit(1);

  auto start = std::chrono::steady_clock::now();
  auto report = VerifyLedger(db.get(), {*digest});
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  if (!report.ok() || !report->ok()) {
    std::printf("unexpected verification failure\n");
    std::exit(1);
  }
  return elapsed;
}

}  // namespace

int main() {
  std::printf("=== Figure 9: ledger verification time vs transaction count "
              "===\n");
  std::printf("(each transaction updates five 260-byte rows)\n\n");
  std::printf("%14s %18s %22s\n", "Transactions", "Verification (s)",
              "us per transaction");

  const int kCounts[] = {500, 1000, 2000, 4000, 8000, 16000};
  double first_per_txn = 0;
  for (int txns : kCounts) {
    double seconds = VerificationSeconds(txns);
    double per_txn = seconds / txns * 1e6;
    if (first_per_txn == 0) first_per_txn = per_txn;
    std::printf("%14d %18.3f %22.1f\n", txns, seconds, per_txn);
  }
  std::printf("\npaper: verification time proportional to the number of "
              "transactions\n");
  std::printf("expected shape: us-per-transaction roughly constant across "
              "the sweep\n");
  return 0;
}
