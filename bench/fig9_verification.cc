// Figure 9 reproduction: ledger verification time for different numbers of
// transactions. Each transaction updates five rows of a ledger table;
// every row is 260 bytes wide (paper §4.2).
//
// Paper result: verification time grows linearly with the number of
// transactions (and row versions) processed. We reproduce the linear
// scaling; absolute times differ (testbed vs container). Verification hash
// recomputation partitions *within* the single table, so the sweep also
// reports the parallel (4-thread) wall time next to the serial one.
//
// `--incremental` switches to the DESIGN.md §11 experiment instead: build a
// ledger, verify it (seeding the watermark), append a small delta, then
// re-verify incrementally vs from scratch. Emits BENCH_verification.json
// (path overridable with --out=) with the measured speedup — the O(delta)
// claim CI checks against.
//
// SQLLEDGER_BENCH_SMOKE=1 shrinks the sweep/ledger for CI.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "crypto/sha256.h"
#include "ledger/verifier.h"
#include "util/json.h"

using namespace sqlledger;

namespace {

Schema WideSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("a", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 244);
  s.SetPrimaryKey({0});
  return s;
}

struct Timings {
  double serial_s = 0;
  double parallel_s = 0;
};

Timings VerificationSeconds(int txns) {
  LedgerDatabaseOptions options;
  options.block_size = 100000;
  options.database_id = "fig9";
  auto opened = LedgerDatabase::Open(std::move(options));
  if (!opened.ok()) std::exit(1);
  auto db = std::move(*opened);
  if (!db->CreateTable("t", WideSchema(), TableKind::kUpdateable).ok())
    std::exit(1);

  const std::string payload(244, 'x');
  int64_t next_id = 1;
  for (int i = 0; i < txns; i++) {
    auto txn = db->Begin("load");
    for (int r = 0; r < 5; r++) {  // five rows per transaction (paper)
      Status st = db->Insert(*txn, "t",
                             {Value::BigInt(next_id++), Value::BigInt(r),
                              Value::Varchar(payload)});
      if (!st.ok()) std::exit(1);
    }
    if (!db->Commit(*txn).ok()) std::exit(1);
  }
  auto digest = db->GenerateDigest();
  if (!digest.ok()) std::exit(1);

  Timings t;
  for (unsigned parallelism : {1u, 4u}) {
    VerificationOptions vopts;
    vopts.parallelism = parallelism;
    auto start = std::chrono::steady_clock::now();
    auto report = VerifyLedger(db.get(), {*digest}, vopts);
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (!report.ok() || !report->ok()) {
      std::printf("unexpected verification failure\n");
      std::exit(1);
    }
    (parallelism == 1 ? t.serial_s : t.parallel_s) = elapsed;
  }
  return t;
}

/// Loads `txns` five-row transactions into `db`.
void LoadTransactions(LedgerDatabase* db, int txns, int64_t* next_id) {
  const std::string payload(244, 'x');
  for (int i = 0; i < txns; i++) {
    auto txn = db->Begin("load");
    for (int r = 0; r < 5; r++) {
      Status st = db->Insert(*txn, "t",
                             {Value::BigInt((*next_id)++), Value::BigInt(r),
                              Value::Varchar(payload)});
      if (!st.ok()) std::exit(1);
    }
    if (!db->Commit(*txn).ok()) std::exit(1);
  }
}

/// The incremental-verification experiment: verify a base ledger once (the
/// watermark seed), append a delta, then time the incremental re-verify
/// against a from-scratch run over the same digests.
int RunIncremental(int base_txns, int append_txns,
                   const std::string& out_path) {
  std::printf("=== Incremental verification: re-verify cost after a small "
              "append ===\n");
  std::printf("(base %d txns, append %d txns, five 260-byte rows each; "
              "sha256 kernel: %s)\n\n",
              base_txns, append_txns, Sha256::KernelName());

  LedgerDatabaseOptions options;
  options.block_size = 1000;
  options.database_id = "fig9";
  auto opened = LedgerDatabase::Open(std::move(options));
  if (!opened.ok()) std::exit(1);
  auto db = std::move(*opened);
  if (!db->CreateTable("t", WideSchema(), TableKind::kUpdateable).ok())
    std::exit(1);

  int64_t next_id = 1;
  LoadTransactions(db.get(), base_txns, &next_id);
  auto d1 = db->GenerateDigest();
  if (!d1.ok()) std::exit(1);

  // Timings come from the database's metrics registry (the verify.*_micros
  // histograms of DESIGN.md §13) — the same accounting verify_tool --stats
  // reports — instead of a bench-private wall-clock read.
  auto hist_sum = [&](const char* name) {
    MetricsSnapshot s = db->MetricsSnapshot();
    auto it = s.histograms.find(name);
    return it == s.histograms.end() ? uint64_t{0} : it->second.sum;
  };
  auto timed = [&](const char* hist, auto fn) {
    uint64_t before = hist_sum(hist);
    fn();
    return static_cast<double>(hist_sum(hist) - before) / 1e6;
  };

  // Seed the watermark: the first incremental run has nothing to skip and
  // costs the same as a full verification.
  double seed_s = timed("verify.incremental_micros", [&] {
    auto report = VerifyLedgerIncremental(db.get(), {*d1});
    if (!report.ok() || !report->ok()) std::exit(1);
  });
  std::printf("  initial verification (watermark seed): %8.3f s\n", seed_s);

  LoadTransactions(db.get(), append_txns, &next_id);
  auto d2 = db->GenerateDigest();
  if (!d2.ok()) std::exit(1);
  std::vector<DatabaseDigest> digests = {*d1, *d2};

  VerificationReport inc;
  double incremental_s = timed("verify.incremental_micros", [&] {
    auto r = VerifyLedgerIncremental(db.get(), digests);
    if (!r.ok() || !r->ok() || r->fell_back_to_full) {
      std::printf("unexpected incremental verification failure\n");
      std::exit(1);
    }
    inc = std::move(*r);
  });
  std::printf("  incremental re-verify: watermark=%llu, %llu blocks "
              "skipped, %llu row versions skipped, %llu hashed\n",
              static_cast<unsigned long long>(inc.watermark_block),
              static_cast<unsigned long long>(inc.blocks_skipped),
              static_cast<unsigned long long>(inc.row_versions_skipped),
              static_cast<unsigned long long>(inc.row_versions_checked));
  const uint64_t full_rows =
      inc.row_versions_checked + inc.row_versions_skipped;

  double full_s = timed("verify.full_micros", [&] {
    auto report = VerifyLedger(db.get(), digests);
    if (!report.ok() || !report->ok()) {
      std::printf("unexpected full verification failure\n");
      std::exit(1);
    }
    if (report->row_versions_checked != full_rows) {
      std::printf("row-version accounting mismatch\n");
      std::exit(1);
    }
  });

  double speedup = full_s / incremental_s;
  std::printf("\n  full re-verify        : %8.3f s\n", full_s);
  std::printf("  incremental re-verify : %8.3f s\n", incremental_s);
  std::printf("  speedup               : %8.1fx\n", speedup);
  std::printf("\npaper/DESIGN.md section 11: incremental cost is O(delta), "
              "not O(ledger)\n");

  JsonValue doc = JsonValue::Object();
  doc.Set("mode", JsonValue::Str("incremental"));
  doc.Set("sha256_kernel", JsonValue::Str(Sha256::KernelName()));
  doc.Set("base_transactions", JsonValue::Int(base_txns));
  doc.Set("appended_transactions", JsonValue::Int(append_txns));
  doc.Set("total_row_versions",
          JsonValue::Int(static_cast<int64_t>(full_rows)));
  doc.Set("watermark_block",
          JsonValue::Int(static_cast<int64_t>(inc.watermark_block)));
  doc.Set("blocks_skipped",
          JsonValue::Int(static_cast<int64_t>(inc.blocks_skipped)));
  doc.Set("row_versions_skipped",
          JsonValue::Int(static_cast<int64_t>(inc.row_versions_skipped)));
  doc.Set("seed_seconds", JsonValue::Double(seed_s));
  doc.Set("full_seconds", JsonValue::Double(full_s));
  doc.Set("incremental_seconds", JsonValue::Double(incremental_s));
  doc.Set("speedup", JsonValue::Double(speedup));
  // Phase accounting across all runs, straight from the registry.
  JsonValue phases = JsonValue::Object();
  phases.Set("reanchor_micros",
             JsonValue::Int(static_cast<int64_t>(
                 hist_sum("verify.reanchor_micros"))));
  phases.Set("tree_hash_micros",
             JsonValue::Int(static_cast<int64_t>(
                 hist_sum("verify.tree_hash_micros"))));
  phases.Set("view_check_micros",
             JsonValue::Int(static_cast<int64_t>(
                 hist_sum("verify.view_check_micros"))));
  doc.Set("phase_micros", std::move(phases));
  std::ofstream out(out_path);
  out << doc.DumpPretty() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool incremental = false;
  std::string out_path = "BENCH_verification.json";
  const bool smoke = std::getenv("SQLLEDGER_BENCH_SMOKE") != nullptr;
  int base_txns = smoke ? 2000 : 10000;
  int append_txns = 100;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--incremental") == 0) incremental = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--txns=", 7) == 0)
      base_txns = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--append=", 9) == 0)
      append_txns = std::atoi(argv[i] + 9);
  }
  if (incremental) return RunIncremental(base_txns, append_txns, out_path);

  std::printf("=== Figure 9: ledger verification time vs transaction count "
              "===\n");
  std::printf("(each transaction updates five 260-byte rows; sha256 kernel: "
              "%s)\n\n", Sha256::KernelName());
  std::printf("%14s %14s %14s %18s\n", "Transactions", "Serial (s)",
              "4 threads (s)", "us per txn (p=1)");

  const int kFull[] = {500, 1000, 2000, 4000, 8000, 16000};
  const int kSmoke[] = {500, 2000};
  const int* counts = smoke ? kSmoke : kFull;
  const int n_counts = smoke ? 2 : 6;

  for (int i = 0; i < n_counts; i++) {
    int txns = counts[i];
    Timings t = VerificationSeconds(txns);
    std::printf("%14d %14.3f %14.3f %18.1f\n", txns, t.serial_s,
                t.parallel_s, t.serial_s / txns * 1e6);
  }
  std::printf("\npaper: verification time proportional to the number of "
              "transactions\n");
  std::printf("expected shape: us-per-transaction roughly constant across "
              "the sweep\n");
  return 0;
}
