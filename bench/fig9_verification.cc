// Figure 9 reproduction: ledger verification time for different numbers of
// transactions. Each transaction updates five rows of a ledger table;
// every row is 260 bytes wide (paper §4.2).
//
// Paper result: verification time grows linearly with the number of
// transactions (and row versions) processed. We reproduce the linear
// scaling; absolute times differ (testbed vs container). Verification hash
// recomputation partitions *within* the single table, so the sweep also
// reports the parallel (4-thread) wall time next to the serial one.
//
// SQLLEDGER_BENCH_SMOKE=1 shrinks the sweep to two points for CI.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "crypto/sha256.h"
#include "ledger/verifier.h"

using namespace sqlledger;

namespace {

Schema WideSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("a", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 244);
  s.SetPrimaryKey({0});
  return s;
}

struct Timings {
  double serial_s = 0;
  double parallel_s = 0;
};

Timings VerificationSeconds(int txns) {
  LedgerDatabaseOptions options;
  options.block_size = 100000;
  options.database_id = "fig9";
  auto opened = LedgerDatabase::Open(std::move(options));
  if (!opened.ok()) std::exit(1);
  auto db = std::move(*opened);
  if (!db->CreateTable("t", WideSchema(), TableKind::kUpdateable).ok())
    std::exit(1);

  const std::string payload(244, 'x');
  int64_t next_id = 1;
  for (int i = 0; i < txns; i++) {
    auto txn = db->Begin("load");
    for (int r = 0; r < 5; r++) {  // five rows per transaction (paper)
      Status st = db->Insert(*txn, "t",
                             {Value::BigInt(next_id++), Value::BigInt(r),
                              Value::Varchar(payload)});
      if (!st.ok()) std::exit(1);
    }
    if (!db->Commit(*txn).ok()) std::exit(1);
  }
  auto digest = db->GenerateDigest();
  if (!digest.ok()) std::exit(1);

  Timings t;
  for (unsigned parallelism : {1u, 4u}) {
    VerificationOptions vopts;
    vopts.parallelism = parallelism;
    auto start = std::chrono::steady_clock::now();
    auto report = VerifyLedger(db.get(), {*digest}, vopts);
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (!report.ok() || !report->ok()) {
      std::printf("unexpected verification failure\n");
      std::exit(1);
    }
    (parallelism == 1 ? t.serial_s : t.parallel_s) = elapsed;
  }
  return t;
}

}  // namespace

int main() {
  std::printf("=== Figure 9: ledger verification time vs transaction count "
              "===\n");
  std::printf("(each transaction updates five 260-byte rows; sha256 kernel: "
              "%s)\n\n", Sha256::KernelName());
  std::printf("%14s %14s %14s %18s\n", "Transactions", "Serial (s)",
              "4 threads (s)", "us per txn (p=1)");

  const bool smoke = std::getenv("SQLLEDGER_BENCH_SMOKE") != nullptr;
  const int kFull[] = {500, 1000, 2000, 4000, 8000, 16000};
  const int kSmoke[] = {500, 2000};
  const int* counts = smoke ? kSmoke : kFull;
  const int n_counts = smoke ? 2 : 6;

  for (int i = 0; i < n_counts; i++) {
    int txns = counts[i];
    Timings t = VerificationSeconds(txns);
    std::printf("%14d %14.3f %14.3f %18.1f\n", txns, t.serial_s,
                t.parallel_s, t.serial_s / txns * 1e6);
  }
  std::printf("\npaper: verification time proportional to the number of "
              "transactions\n");
  std::printf("expected shape: us-per-transaction roughly constant across "
              "the sweep\n");
  return 0;
}
