// §2.2 ablation: the naive approach (re-hash the entire dataset for every
// digest) vs SQL Ledger's incremental Database Ledger maintenance.
//
// The paper rejects the naive design because "the cost of computing the
// hash across the whole dataset frequently enough to provide actual
// protection is prohibitive". This bench quantifies that: the naive digest
// cost grows linearly with table size, while the incremental digest cost
// stays flat (it only hashes recently appended entries).

#include <chrono>
#include <cstdio>

#include "crypto/merkle.h"
#include "ledger/ledger_database.h"
#include "ledger/row_serializer.h"

using namespace sqlledger;

namespace {

Schema WideSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 244);
  s.SetPrimaryKey({0});
  return s;
}

/// The naive digest: serialize + SHA-256 every row of the table.
double NaiveDigestSeconds(const LedgerTableRef& ref) {
  auto start = std::chrono::steady_clock::now();
  MerkleBuilder builder;
  const Schema& schema = ref.main->schema();
  for (BTree::Iterator it = ref.main->Scan(); it.Valid(); it.Next()) {
    builder.AddLeafHash(RowVersionLeafHash(schema, it.value(), RowOp::kInsert,
                                           ref.table_id, 0, 0));
  }
  Hash256 root = builder.Root();
  (void)root;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  std::printf("=== naive full-rehash digest vs incremental Database Ledger "
              "digest ===\n\n");
  std::printf("%12s %22s %26s\n", "Table rows", "Naive digest (ms)",
              "Incremental digest (ms)");

  const std::string payload(244, 'x');
  for (int rows : {1000, 5000, 20000, 80000}) {
    LedgerDatabaseOptions options;
    options.block_size = 100000;
    auto opened = LedgerDatabase::Open(std::move(options));
    if (!opened.ok()) return 1;
    auto db = std::move(*opened);
    if (!db->CreateTable("t", WideSchema(), TableKind::kUpdateable).ok())
      return 1;

    for (int64_t i = 0; i < rows; i += 100) {
      auto txn = db->Begin("load");
      for (int64_t j = i; j < i + 100 && j < rows; j++) {
        if (!db->Insert(*txn, "t", {Value::BigInt(j), Value::Varchar(payload)})
                 .ok())
          return 1;
      }
      if (!db->Commit(*txn).ok()) return 1;
    }
    // One recent transaction — the digest only has to cover this delta.
    (void)db->GenerateDigest();
    auto txn = db->Begin("delta");
    (void)db->Insert(*txn, "t",
                     {Value::BigInt(1000000), Value::Varchar(payload)});
    (void)db->Commit(*txn);

    auto ref = db->GetTableRef("t");
    double naive_ms = NaiveDigestSeconds(*ref) * 1000.0;

    auto start = std::chrono::steady_clock::now();
    auto digest = db->GenerateDigest();
    double incremental_ms =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count() *
        1000.0;
    if (!digest.ok()) return 1;

    std::printf("%12d %22.2f %26.3f\n", rows, naive_ms, incremental_ms);
  }
  std::printf("\nexpected shape: naive cost grows linearly with table size; "
              "incremental cost stays flat\n");
  return 0;
}
