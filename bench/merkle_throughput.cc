// §3.2.1 microbenchmark: the streaming Merkle-root algorithm. Confirms
// O(N) time (ns/leaf flat as N grows) and O(log N) space, plus the cost of
// proof generation/verification on the materialized tree, and the batched
// leaf-hash path against the one-at-a-time path. Run with
// SQLLEDGER_FORCE_SCALAR_SHA=1 to compare against the scalar kernel.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/sha256_kernel.h"

using namespace sqlledger;

namespace {

std::vector<Hash256> MakeLeaves(int64_t n) {
  std::vector<Hash256> leaves;
  leaves.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; i++) {
    std::string data = "leaf-" + std::to_string(i);
    leaves.push_back(MerkleLeafHash(Slice(data)));
  }
  return leaves;
}

void BM_StreamingRoot(benchmark::State& state) {
  std::vector<Hash256> leaves = MakeLeaves(state.range(0));
  size_t peak_pending = 0;
  for (auto _ : state) {
    MerkleBuilder builder;
    for (const Hash256& leaf : leaves) builder.AddLeafHash(leaf);
    if (builder.pending_nodes() > peak_pending)
      peak_pending = builder.pending_nodes();
    benchmark::DoNotOptimize(builder.Root());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["pending_nodes"] = static_cast<double>(peak_pending);
}

void BM_MaterializedRoot(benchmark::State& state) {
  std::vector<Hash256> leaves = MakeLeaves(state.range(0));
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.Root());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SavepointSnapshot(benchmark::State& state) {
  // Cost of capturing the O(log N) Merkle state — what a transaction
  // savepoint pays (paper §3.2.1).
  std::vector<Hash256> leaves = MakeLeaves(state.range(0));
  MerkleBuilder builder;
  for (const Hash256& leaf : leaves) builder.AddLeafHash(leaf);
  for (auto _ : state) {
    MerkleBuilderState snapshot = builder.GetState();
    benchmark::DoNotOptimize(snapshot);
  }
}

void BM_ProveAndVerify(benchmark::State& state) {
  std::vector<Hash256> leaves = MakeLeaves(state.range(0));
  MerkleTree tree(leaves);
  Hash256 root = tree.Root();
  uint64_t index = static_cast<uint64_t>(state.range(0)) / 2;
  for (auto _ : state) {
    MerkleProof proof = tree.Prove(index);
    bool ok = MerkleTree::VerifyProof(leaves[index], proof, root);
    if (!ok) state.SkipWithError("proof failed");
    benchmark::DoNotOptimize(ok);
  }
}

void BM_Sha256(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(Slice(data)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_LeafHashOneAtATime(benchmark::State& state) {
  // The pre-batching hot path: one MerkleLeafHash call per 260-byte leaf.
  const size_t n = static_cast<size_t>(state.range(0));
  std::string data(260, 'x');
  std::vector<Hash256> out(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; i++) out[i] = MerkleLeafHash(Slice(data));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_LeafHashBatched(benchmark::State& state) {
  // Same work through MerkleLeafHashMany (what commit/verify now use).
  const size_t n = static_cast<size_t>(state.range(0));
  std::string data(260, 'x');
  std::vector<Slice> inputs(n, Slice(data));
  std::vector<Hash256> out(n);
  for (auto _ : state) {
    MerkleLeafHashMany(inputs.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

BENCHMARK(BM_StreamingRoot)->Range(256, 262144);
BENCHMARK(BM_MaterializedRoot)->Range(256, 65536);
BENCHMARK(BM_SavepointSnapshot)->Range(256, 262144);
BENCHMARK(BM_ProveAndVerify)->Range(256, 65536);
BENCHMARK(BM_Sha256)->Range(64, 65536);
BENCHMARK(BM_LeafHashOneAtATime)->Range(1024, 65536);
BENCHMARK(BM_LeafHashBatched)->Range(1024, 65536);

}  // namespace

int main(int argc, char** argv) {
  std::printf("sha256 kernel: %s\n", sqlledger::Sha256::KernelName());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
