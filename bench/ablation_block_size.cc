// §3.3.1 ablation: the Database Ledger block size. The paper picks 100K
// transactions per block so that block-hash computation and block-row
// storage amortize over many transactions, while Merkle proofs keep
// per-transaction verification cheap.
//
// This bench sweeps the block size and reports commit throughput and the
// per-transaction proof size, exposing the trade-off the paper describes.

#include <benchmark/benchmark.h>

#include "ledger/ledger_database.h"
#include "ledger/receipt.h"

using namespace sqlledger;

namespace {

Schema SmallSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 64);
  s.SetPrimaryKey({0});
  return s;
}

/// Commit throughput as a function of the ledger block size.
void BM_CommitThroughput(benchmark::State& state) {
  LedgerDatabaseOptions options;
  options.block_size = static_cast<uint64_t>(state.range(0));
  auto opened = LedgerDatabase::Open(std::move(options));
  if (!opened.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  auto db = std::move(*opened);
  if (!db->CreateTable("t", SmallSchema(), TableKind::kUpdateable).ok()) {
    state.SkipWithError("create failed");
    return;
  }
  const std::string payload(64, 'p');
  int64_t id = 0;
  for (auto _ : state) {
    auto txn = db->Begin("bench");
    Status st =
        db->Insert(*txn, "t", {Value::BigInt(id++), Value::Varchar(payload)});
    if (st.ok()) st = db->Commit(*txn);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["blocks_closed"] = static_cast<double>(
      db->database_ledger()->closed_block_count());
}

/// Merkle proof size (receipt size driver) as a function of block size.
void BM_ProofSize(benchmark::State& state) {
  uint64_t block_size = static_cast<uint64_t>(state.range(0));
  LedgerDatabaseOptions options;
  options.block_size = block_size;
  auto opened = LedgerDatabase::Open(std::move(options));
  auto db = std::move(*opened);
  if (!db->CreateTable("t", SmallSchema(), TableKind::kUpdateable).ok()) {
    state.SkipWithError("create failed");
    return;
  }
  // Fill exactly one block.
  uint64_t target_txn = 0;
  for (uint64_t i = 0; i < block_size; i++) {
    auto txn = db->Begin("bench");
    if (i == block_size / 2) target_txn = (*txn)->id();
    (void)db->Insert(*txn, "t",
                     {Value::BigInt(static_cast<int64_t>(i) + 1000),
                      Value::Varchar("x")});
    (void)db->Commit(*txn);
  }
  (void)db->GenerateDigest();

  size_t proof_steps = 0;
  for (auto _ : state) {
    auto proof = db->database_ledger()->ProveTransaction(target_txn);
    if (!proof.ok()) {
      state.SkipWithError(proof.status().ToString().c_str());
      return;
    }
    proof_steps = proof->steps.size();
    benchmark::DoNotOptimize(proof);
  }
  state.counters["proof_steps"] = static_cast<double>(proof_steps);
  state.counters["proof_bytes"] = static_cast<double>(proof_steps * 33);
}

BENCHMARK(BM_CommitThroughput)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ProofSize)
    ->Arg(16)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
