// Figure 8 reproduction: single-row DML latency on regular vs ledger
// tables, 260-byte rows, varying number of non-clustered indexes (0-3).
//
// Paper result: ledger overhead ~12us/row for INSERT (hash only),
// ~30us/row for DELETE (hash + history insert), ~40us/row for UPDATE
// (two hashes + history insert); overhead roughly independent of the index
// count. We reproduce the ordering INSERT < DELETE < UPDATE and the
// index-count independence of the *overhead*.

#include <benchmark/benchmark.h>

#include "ledger/ledger_database.h"

using namespace sqlledger;

namespace {

constexpr int64_t kPrepopulated = 4096;

// 4 BIGINT columns (32 bytes) + VARCHAR payload of 228 = 260-byte rows,
// matching the paper's §4.1.2 setup.
Schema WideSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("a", DataType::kBigInt, false);
  s.AddColumn("b", DataType::kBigInt, false);
  s.AddColumn("c", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 228);
  s.SetPrimaryKey({0});
  return s;
}

Row WideRow(int64_t id) {
  return {Value::BigInt(id), Value::BigInt(id * 2), Value::BigInt(id * 3),
          Value::BigInt(id * 5), Value::Varchar(std::string(228, 'x'))};
}

struct BenchDb {
  std::unique_ptr<LedgerDatabase> db;
  int64_t next_id = 1;

  BenchDb(bool ledger, int num_indexes) {
    LedgerDatabaseOptions options;
    options.enable_ledger = ledger;
    options.block_size = 100000;
    auto opened = LedgerDatabase::Open(std::move(options));
    if (!opened.ok()) std::exit(1);
    db = std::move(*opened);
    TableKind kind = ledger ? TableKind::kUpdateable : TableKind::kRegular;
    if (!db->CreateTable("t", WideSchema(), kind).ok()) std::exit(1);
    static const char* kIndexCols[] = {"a", "b", "c"};
    for (int i = 0; i < num_indexes; i++) {
      if (!db->CreateIndex("t", std::string("idx_") + kIndexCols[i],
                           {kIndexCols[i]}, false)
               .ok())
        std::exit(1);
    }
    Prepopulate(kPrepopulated);
  }

  void Prepopulate(int64_t n) {
    auto txn = db->Begin("load");
    for (int64_t i = 0; i < n; i++) {
      if (!db->Insert(*txn, "t", WideRow(next_id++)).ok()) std::exit(1);
    }
    if (!db->Commit(*txn).ok()) std::exit(1);
  }
};

// args: {ledger (0/1), num_indexes}
void BM_Insert(benchmark::State& state) {
  BenchDb bench(state.range(0) != 0, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto txn = bench.db->Begin("bench");
    Status st = bench.db->Insert(*txn, "t", WideRow(bench.next_id++));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(st);
    (void)bench.db->Commit(*txn);
  }
  state.SetLabel(state.range(0) ? "ledger" : "regular");
}

void BM_Update(benchmark::State& state) {
  BenchDb bench(state.range(0) != 0, static_cast<int>(state.range(1)));
  int64_t key = 1;
  for (auto _ : state) {
    auto txn = bench.db->Begin("bench");
    Row row = WideRow(key);
    row[1] = Value::BigInt(bench.next_id++);  // perturb a non-key column
    Status st = bench.db->Update(*txn, "t", row);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    (void)bench.db->Commit(*txn);
    key = key % kPrepopulated + 1;
  }
  state.SetLabel(state.range(0) ? "ledger" : "regular");
}

void BM_Delete(benchmark::State& state) {
  BenchDb bench(state.range(0) != 0, static_cast<int>(state.range(1)));
  int64_t key = 1;
  for (auto _ : state) {
    if (key > bench.next_id - 1) {  // pool exhausted: refill untimed
      state.PauseTiming();
      bench.Prepopulate(kPrepopulated);
      state.ResumeTiming();
    }
    auto txn = bench.db->Begin("bench");
    Status st = bench.db->Delete(*txn, "t", {Value::BigInt(key++)});
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    (void)bench.db->Commit(*txn);
  }
  state.SetLabel(state.range(0) ? "ledger" : "regular");
}

void IndexSweep(benchmark::internal::Benchmark* b) {
  for (int ledger = 0; ledger <= 1; ledger++) {
    for (int indexes = 0; indexes <= 3; indexes++) {
      b->Args({ledger, indexes});
    }
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Insert)->Apply(IndexSweep);
BENCHMARK(BM_Update)->Apply(IndexSweep);
BENCHMARK(BM_Delete)->Apply(IndexSweep);

}  // namespace

BENCHMARK_MAIN();
